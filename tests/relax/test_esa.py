"""Unit tests for ESA-style relatedness rules."""

import pytest

from repro.core.terms import Resource, TextToken
from repro.core.triples import Triple
from repro.relax.esa import EsaModel, esa_rules
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore


def _store():
    store = TripleStore()
    lectured = TextToken("lectured at")
    teaches = TextToken("teaches at")
    unrelated = Resource("ownsCar")
    for i in range(3):
        p, u = Resource(f"Prof{i}"), Resource(f"Uni{i}")
        store.add(Triple(p, lectured, u))
    for i in range(3, 6):
        p, u = Resource(f"Prof{i}"), Resource(f"Uni{i}")
        store.add(Triple(p, teaches, u))
    store.add(Triple(Resource("Prof0"), unrelated, Resource("CarA")))
    return store.freeze()


class TestEsaModel:
    def test_similarity_symmetric(self):
        stats = StoreStatistics(_store())
        model = EsaModel.for_predicates(stats)
        a, b = TextToken("lectured at"), TextToken("teaches at")
        assert model.similarity(a, b) == pytest.approx(model.similarity(b, a))

    def test_self_similarity_is_one(self):
        stats = StoreStatistics(_store())
        model = EsaModel.for_predicates(stats)
        token = TextToken("lectured at")
        assert model.similarity(token, token) == pytest.approx(1.0)

    def test_unknown_key_zero(self):
        model = EsaModel({})
        assert model.similarity(Resource("a"), Resource("b")) == 0.0

    def test_shared_vocabulary_beats_unrelated(self):
        stats = StoreStatistics(_store())
        model = EsaModel.for_predicates(stats)
        related = model.similarity(TextToken("lectured at"), TextToken("teaches at"))
        unrelated = model.similarity(TextToken("lectured at"), Resource("ownsCar"))
        # 'lectured at' and 'teaches at' share the preposition and the
        # university-argument vocabulary; ownsCar shares almost nothing.
        assert related > unrelated

    def test_keys_sorted(self):
        stats = StoreStatistics(_store())
        model = EsaModel.for_predicates(stats)
        keys = model.keys()
        assert keys == sorted(keys, key=lambda t: t.sort_key())


class TestEsaRules:
    def test_rules_above_threshold(self):
        stats = StoreStatistics(_store())
        rules = esa_rules(stats, min_similarity=0.2)
        assert all(r.weight >= 0.2 for r in rules)
        assert all(r.origin == "esa" for r in rules)

    def test_no_self_rules(self):
        stats = StoreStatistics(_store())
        rules = esa_rules(stats, min_similarity=0.0)
        for rule in rules:
            assert rule.original[0].p != rule.replacement[0].p

    def test_cap(self):
        stats = StoreStatistics(_store())
        rules = esa_rules(stats, min_similarity=0.0, max_rules_per_predicate=1)
        by_source: dict = {}
        for rule in rules:
            by_source.setdefault(rule.original[0].p, []).append(rule)
        assert all(len(v) <= 1 for v in by_source.values())
