"""Unit tests for XKG rule mining (the paper's §3 weight formula)."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple
from repro.relax.mining import mine_arg_overlap_rules, mine_chain_expansion_rules
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore


def _store_with_overlap():
    """affiliation and 'works at' share 3 of 4 pairs; 'works at' has 4."""
    store = TripleStore()
    aff = Resource("affiliation")
    works = TextToken("works at")
    people = [Resource(f"P{i}") for i in range(5)]
    orgs = [Resource(f"O{i}") for i in range(5)]
    for i in range(3):  # shared pairs
        store.add(Triple(people[i], aff, orgs[i]))
        store.add(Triple(people[i], works, orgs[i]))
    store.add(Triple(people[3], aff, orgs[3]))   # aff-only
    store.add(Triple(people[4], works, orgs[4]))  # works-only
    return store.freeze()


class TestArgOverlapMining:
    def test_paper_weight_formula(self):
        stats = StoreStatistics(_store_with_overlap())
        rules = mine_arg_overlap_rules(stats, min_support=2, min_weight=0.0)
        by_pair = {
            (r.original[0].p, r.replacement[0].p): r.weight for r in rules
        }
        aff, works = Resource("affiliation"), TextToken("works at")
        # w(aff → works) = |∩| / |args(works)| = 3/4
        assert by_pair[(aff, works)] == pytest.approx(3 / 4)
        # w(works → aff) = 3 / |args(aff)| = 3/4
        assert by_pair[(works, aff)] == pytest.approx(3 / 4)

    def test_min_support_filters(self):
        stats = StoreStatistics(_store_with_overlap())
        rules = mine_arg_overlap_rules(stats, min_support=4)
        assert rules == []

    def test_min_weight_filters(self):
        stats = StoreStatistics(_store_with_overlap())
        rules = mine_arg_overlap_rules(stats, min_weight=0.9)
        assert rules == []

    def test_inverted_direction_mined(self):
        store = TripleStore()
        adv = Resource("hasAdvisor")
        stu = Resource("hasStudent")
        for i in range(3):
            a, b = Resource(f"A{i}"), Resource(f"B{i}")
            store.add(Triple(a, adv, b))
            store.add(Triple(b, stu, a))
        store.freeze()
        rules = mine_arg_overlap_rules(
            StoreStatistics(store), min_support=2, min_weight=0.5
        )
        inverted = [
            r
            for r in rules
            if r.original[0].p == adv
            and r.replacement[0].p == stu
            # inversion: replacement has flipped variables
            and r.replacement[0].s == Variable("y")
        ]
        assert inverted
        assert inverted[0].weight == pytest.approx(1.0)

    def test_inversions_can_be_disabled(self):
        store = TripleStore()
        adv, stu = Resource("hasAdvisor"), Resource("hasStudent")
        for i in range(3):
            a, b = Resource(f"A{i}"), Resource(f"B{i}")
            store.add(Triple(a, adv, b))
            store.add(Triple(b, stu, a))
        store.freeze()
        rules = mine_arg_overlap_rules(
            StoreStatistics(store), include_inversions=False, min_weight=0.0
        )
        assert rules == []

    def test_cap_per_predicate(self):
        store = TripleStore()
        source = Resource("p0")
        pairs = [(Resource(f"S{i}"), Resource(f"O{i}")) for i in range(4)]
        for s, o in pairs:
            store.add(Triple(s, source, o))
        for j in range(6):
            target = Resource(f"q{j}")
            for s, o in pairs[: 2 + (j % 3)]:
                store.add(Triple(s, target, o))
        store.freeze()
        rules = mine_arg_overlap_rules(
            StoreStatistics(store),
            predicates=[source],
            max_rules_per_predicate=3,
            min_weight=0.0,
        )
        assert len(rules) == 3

    def test_deterministic_order(self):
        stats = StoreStatistics(_store_with_overlap())
        first = [r.n3() for r in mine_arg_overlap_rules(stats, min_weight=0.0)]
        second = [r.n3() for r in mine_arg_overlap_rules(stats, min_weight=0.0)]
        assert first == second

    def test_rule_origin(self):
        stats = StoreStatistics(_store_with_overlap())
        rules = mine_arg_overlap_rules(stats, min_weight=0.0)
        assert all(r.origin == "mined-xkg" for r in rules)


class TestChainExpansionMining:
    def _chain_store(self):
        """affiliation(P, U) ≈ affiliation(P, I) ∘ housedIn(I, U)."""
        store = TripleStore()
        aff = Resource("affiliation")
        housed = TextToken("housed in")
        for i in range(4):
            person = Resource(f"P{i}")
            institute = Resource(f"I{i}")
            university = Resource(f"U{i}")
            store.add(Triple(person, aff, institute))
            store.add(Triple(institute, housed, university))
            if i < 2:  # some direct affiliation with the university too
                store.add(Triple(person, aff, university))
        return store.freeze()

    def test_chain_rule_mined(self):
        stats = StoreStatistics(self._chain_store())
        rules = mine_chain_expansion_rules(
            stats,
            source_predicates=[Resource("affiliation")],
            min_support=2,
            min_weight=0.1,
        )
        assert rules
        rule = rules[0]
        assert len(rule.replacement) == 2
        assert rule.replacement[1].p == TextToken("housed in")
        # support 2 of 4 composed pairs, smoothed: (2+1)/(4+2) = 0.5
        assert rule.weight == pytest.approx(0.5)

    def test_min_support(self):
        stats = StoreStatistics(self._chain_store())
        rules = mine_chain_expansion_rules(
            stats,
            source_predicates=[Resource("affiliation")],
            min_support=3,
        )
        assert rules == []

    def test_self_composition_excluded(self):
        stats = StoreStatistics(self._chain_store())
        rules = mine_chain_expansion_rules(stats, min_support=1, min_weight=0.0)
        for rule in rules:
            assert rule.replacement[0].p != rule.replacement[1].p or (
                rule.original[0].p != rule.replacement[1].p
            )
