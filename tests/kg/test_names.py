"""Unit tests for deterministic name generation."""

from repro.kg.names import NameFactory, to_camel
from repro.util.rand import SeededRng


class TestToCamel:
    def test_basic(self):
        assert to_camel("albert einstein") == "AlbertEinstein"

    def test_multiword(self):
        assert to_camel("brenford state university") == "BrenfordStateUniversity"


class TestNameFactory:
    def test_deterministic(self):
        a = NameFactory(SeededRng(5))
        b = NameFactory(SeededRng(5))
        assert [a.person() for _ in range(10)] == [b.person() for _ in range(10)]

    def test_uniqueness_under_collisions(self):
        factory = NameFactory(SeededRng(5))
        names = [factory.city() for _ in range(300)]
        camels = [to_camel(n) for n in names]
        assert len(set(camels)) == len(camels)

    def test_person_has_two_parts(self):
        factory = NameFactory(SeededRng(5))
        assert len(factory.person().split()) >= 2

    def test_org_names_avoid_prepositions(self):
        factory = NameFactory(SeededRng(5))
        for _ in range(20):
            for name in (factory.university("Testcity"), factory.institute("test field")):
                words = set(name.lower().split())
                assert not words & {"of", "for"}

    def test_university_mentions_city(self):
        factory = NameFactory(SeededRng(5))
        assert "testcity" in factory.university("testcity").lower()

    def test_prize_mentions_field(self):
        factory = NameFactory(SeededRng(5))
        assert "optics" in factory.prize("applied optics")
