"""Unit tests for the class taxonomy."""

from repro.core.terms import Resource
from repro.kg.taxonomy import PERSON_LEAF_CLASSES, Taxonomy


class TestTaxonomy:
    def test_all_person_leaves_reach_person(self):
        taxonomy = Taxonomy()
        for leaf in PERSON_LEAF_CLASSES:
            assert taxonomy.is_subclass(leaf, "person")
            assert taxonomy.is_subclass(leaf, "entity")

    def test_reflexive(self):
        taxonomy = Taxonomy()
        assert taxonomy.is_subclass("city", "city")

    def test_not_subclass_sideways(self):
        taxonomy = Taxonomy()
        assert not taxonomy.is_subclass("city", "organization")
        assert not taxonomy.is_subclass("person", "physicist")  # no downcast

    def test_ancestors_transitive(self):
        taxonomy = Taxonomy()
        ancestors = taxonomy.ancestors("physicist")
        assert {"scientist", "person", "entity"} <= ancestors

    def test_parents_direct_only(self):
        taxonomy = Taxonomy()
        assert taxonomy.parents("physicist") == {"scientist"}

    def test_contains(self):
        taxonomy = Taxonomy()
        assert "city" in taxonomy
        assert "starship" not in taxonomy

    def test_subclass_triples_shape(self):
        taxonomy = Taxonomy()
        triples = taxonomy.subclass_triples()
        assert all(t.p == Resource("subclassOf") for t in triples)
        rendered = {t.n3() for t in triples}
        assert "physicist subclassOf scientist" in rendered

    def test_type_closure_excludes_root(self):
        taxonomy = Taxonomy()
        closure = taxonomy.type_closure("physicist")
        assert closure[0] == "physicist"
        assert "entity" not in closure
        assert "scientist" in closure

    def test_classes_sorted(self):
        taxonomy = Taxonomy()
        assert taxonomy.classes() == sorted(taxonomy.classes())
