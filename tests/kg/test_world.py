"""Unit tests for the hidden world model."""

import pytest

from repro.kg.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=80, seed=3))


class TestGeneration:
    def test_deterministic(self):
        a = World.generate(WorldConfig(num_people=40, seed=9))
        b = World.generate(WorldConfig(num_people=40, seed=9))
        assert [f.relation + f.subject + f.obj for f in a.facts] == [
            f.relation + f.subject + f.obj for f in b.facts
        ]

    def test_different_seeds_differ(self):
        a = World.generate(WorldConfig(num_people=40, seed=1))
        b = World.generate(WorldConfig(num_people=40, seed=2))
        assert {e.id for e in a.people} != {e.id for e in b.people}

    def test_sizes_respected(self, world):
        config = world.config
        assert len(world.people) == config.num_people
        assert len(world.countries) == config.num_countries
        assert len(world.universities) == config.num_universities

    def test_entity_ids_unique(self, world):
        assert len(world.entities) == len(
            world.people
        ) + len(world.cities) + len(world.countries) + len(
            world.universities
        ) + len(world.institutes) + len(world.companies) + len(
            world.fields
        ) + len(world.prizes) + len(world.groups)


class TestInvariants:
    def test_every_city_in_exactly_one_country(self, world):
        for city in world.cities:
            assert len(world.objects_of("cityInCountry", city.id)) == 1

    def test_every_person_born_somewhere(self, world):
        for person in world.people:
            cities = world.objects_of("bornInCity", person.id)
            assert len(cities) == 1
            assert world.entities[cities[0]].kind == "city"

    def test_nationality_matches_birth_city(self, world):
        for person in world.people:
            city = world.objects_of("bornInCity", person.id)[0]
            country = world.objects_of("cityInCountry", city)[0]
            assert world.objects_of("nationality", person.id) == [country]

    def test_everyone_employed(self, world):
        org_ids = {o.id for o in world.organizations()}
        for person in world.people:
            employers = world.objects_of("worksAt", person.id)
            assert employers
            assert set(employers) <= org_ids

    def test_advisors_are_people(self, world):
        people_ids = {p.id for p in world.people}
        for student, advisor in world.pairs("hasAdvisor"):
            assert student in people_ids
            assert advisor in people_ids
            assert student != advisor

    def test_institutes_housed_in_universities(self, world):
        university_ids = {u.id for u in world.universities}
        for institute in world.institutes:
            hosts = world.objects_of("housedIn", institute.id)
            assert len(hosts) == 1
            assert hosts[0] in university_ids

    def test_lectures_not_at_employer(self, world):
        for person, university in world.pairs("lecturedAt"):
            assert university not in world.objects_of("worksAt", person)

    def test_marriage_symmetric(self, world):
        for a, b in world.pairs("marriedTo"):
            assert world.holds("marriedTo", b, a)

    def test_collaboration_symmetric(self, world):
        for a, b in world.pairs("collaboratedWith"):
            assert world.holds("collaboratedWith", b, a)

    def test_prize_winners_have_prize_for(self, world):
        for person, _prize in world.pairs("wonPrize"):
            assert world.objects_of("prizeFor", person)

    def test_born_dates_are_iso(self, world):
        from datetime import date

        for fact in world.facts_of("bornOnDate"):
            assert fact.literal
            date.fromisoformat(fact.obj)  # raises if malformed


class TestAccessors:
    def test_subjects_of(self, world):
        city = world.cities[0]
        for person in world.subjects_of("bornInCity", city.id):
            assert world.holds("bornInCity", person, city.id)

    def test_facts_of_unknown_relation(self, world):
        assert world.facts_of("noSuchRelation") == []

    def test_popularity_skew(self, world):
        """Earlier people should attract more advisor edges (Zipf)."""
        n = len(world.people)
        first_half = sum(
            1
            for _s, advisor in world.pairs("hasAdvisor")
            if advisor in {p.id for p in world.people[: n // 2]}
        )
        second_half = len(world.pairs("hasAdvisor")) - first_half
        assert first_half > second_half
