"""Unit tests for the KG sampler (incompleteness structure)."""

import pytest

from repro.core.terms import Resource
from repro.core.triples import TriplePattern, Variable
from repro.kg.generator import DEFAULT_MAPPINGS, KgConfig, KgGenerator, RelationMapping
from repro.kg.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=80, seed=3))


@pytest.fixture(scope="module")
def kg(world):
    return KgGenerator(world).generate()


class TestSampling:
    def test_deterministic(self, world):
        a = KgGenerator(world).generate()
        b = KgGenerator(world).generate()
        assert [t.n3() for t in a.triples] == [t.n3() for t in b.triples]

    def test_vocabulary_gaps_absent(self, kg):
        predicates = {t.p.lexical() for t in kg.triples}
        for relation in ("lecturedAt", "housedIn", "prizeFor", "collaboratedWith"):
            assert kg.predicate_for(relation) is None
        assert "lecturedAt" not in predicates

    def test_coverage_roughly_respected(self, kg):
        for relation, mapping in DEFAULT_MAPPINGS.items():
            if mapping.predicate is None:
                assert kg.coverage_of(relation) == 0.0
                continue
            realized = kg.coverage_of(relation)
            assert abs(realized - mapping.coverage) < 0.2

    def test_inverted_relation_stored_flipped(self, kg, world):
        student, advisor = next(iter(world.pairs("hasAdvisor")))
        kept = {
            (t.s.lexical(), t.o.lexical())
            for t in kg.triples
            if t.p == Resource("hasStudent")
        }
        # Every stored hasStudent edge must be a flipped world hasAdvisor.
        world_flipped = {(a, s) for s, a in world.pairs("hasAdvisor")}
        assert kept <= world_flipped

    def test_type_triples_present(self, kg, world):
        typed = {
            t.s.lexical()
            for t in kg.triples
            if t.p == Resource("type")
        }
        assert len(typed) >= 0.9 * len(world.entities)

    def test_subclass_triples_present(self, kg):
        rendered = {t.n3() for t in kg.triples}
        assert "physicist subclassOf scientist" in rendered

    def test_dropped_facts_recorded(self, kg):
        for relation in ("lecturedAt", "housedIn"):
            assert kg.dropped_facts[relation]

    def test_store_roundtrip(self, kg):
        store = kg.store()
        assert store.is_frozen
        assert len(store) == len(set(kg.triples))

    def test_store_queryable(self, kg, world):
        store = kg.store()
        x, y = Variable("x"), Variable("y")
        matches = store.matches(TriplePattern(x, Resource("bornIn"), y))
        assert matches
        # Every stored bornIn fact is world-true.
        for record in matches:
            assert world.holds(
                "bornInCity", record.triple.s.lexical(), record.triple.o.lexical()
            )


class TestCustomMappings:
    def test_full_coverage_config(self, world):
        mappings = dict(DEFAULT_MAPPINGS)
        mappings["worksAt"] = RelationMapping("affiliation", 1.0)
        kg = KgGenerator(world, KgConfig(mappings=mappings)).generate()
        assert kg.coverage_of("worksAt") == 1.0

    def test_inverting_literal_relation_rejected(self, world):
        mappings = dict(DEFAULT_MAPPINGS)
        mappings["bornOnDate"] = RelationMapping("bornOn", 1.0, inverted=True)
        with pytest.raises(ValueError):
            KgGenerator(world, KgConfig(mappings=mappings)).generate()
