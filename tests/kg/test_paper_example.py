"""Tests that the paper's running example is reproduced verbatim."""

from repro.core.terms import Resource, TextToken
from repro.kg.paper_example import (
    paper_kg,
    paper_rules,
    paper_store,
    paper_xkg_extension,
)


class TestFigure1:
    def test_six_triples(self):
        assert len(paper_kg()) == 6

    def test_exact_content(self):
        rendered = {t.n3() for t in paper_kg()}
        assert rendered == {
            "AlbertEinstein bornIn Ulm",
            "Ulm locatedIn Germany",
            'AlbertEinstein bornOn "1879-03-14"',
            "AlfredKleiner hasStudent AlbertEinstein",
            "AlbertEinstein affiliation IAS",
            "PrincetonUniversity member IvyLeague",
        }


class TestFigure3:
    def test_four_extension_triples(self):
        assert len(paper_xkg_extension()) == 4

    def test_exact_content(self):
        rendered = {t.n3() for t, _p, _c in paper_xkg_extension()}
        assert (
            "AlbertEinstein 'won nobel for' "
            "'discovery of the photoelectric effect'"
        ) in rendered
        assert "IAS 'housed in' PrincetonUniversity" in rendered
        assert "AlbertEinstein 'lectured at' PrincetonUniversity" in rendered

    def test_extension_has_provenance_and_confidence(self):
        for triple, provenance, confidence in paper_xkg_extension():
            assert provenance.is_extraction
            assert provenance.source
            assert 0 < confidence < 1


class TestFigure4:
    def test_four_rules_with_paper_weights(self):
        rules = paper_rules()
        assert [r.weight for r in rules] == [1.0, 1.0, 0.8, 0.7]

    def test_rule2_is_inversion(self):
        rule = paper_rules()[1]
        assert rule.n3() == "?x hasAdvisor ?y => ?y hasStudent ?x @ 1"

    def test_rule3_expands_via_token(self):
        rule = paper_rules()[2]
        assert len(rule.replacement) == 2
        assert rule.replacement[1].p == TextToken("housed in")

    def test_rule1_granularity_shape(self):
        rule = paper_rules()[0]
        assert len(rule.original) == 2
        assert len(rule.replacement) == 3


class TestPaperStore:
    def test_sizes(self):
        store = paper_store()
        assert store.num_kg_triples() == 6 + 3  # Figure 1 + type assertions
        assert store.num_token_triples() == 4

    def test_queryable(self):
        store = paper_store()
        assert (
            store.lookup(
                __import__("repro.core.triples", fromlist=["Triple"]).Triple(
                    Resource("AlbertEinstein"),
                    Resource("affiliation"),
                    Resource("IAS"),
                )
            )
            is not None
        )
