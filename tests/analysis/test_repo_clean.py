"""Meta-test: the repo's own source must satisfy its invariant checker.

This is the tier-1 anchor for the standing constraints — a PR that
introduces an unguarded touch of lock-guarded state, leaks an executor,
lets hash order into the execution core, bypasses a close sentinel, or
drops a QueryStats counter from a surface fails here before any
runtime test has a chance to flake.
"""

from pathlib import Path

import repro
from repro.analysis import analyze

SRC = Path(repro.__file__).resolve().parent
MAX_SUPPRESSIONS = 10


def _run():
    errors = []
    findings = analyze(
        [SRC], root=SRC.parent, on_error=lambda p, e: errors.append((p, e))
    )
    assert errors == []
    return findings


def test_src_is_violation_free():
    active = [f for f in _run() if not f.suppressed]
    assert active == [], "\n" + "\n".join(f.render() for f in active)


def test_suppression_budget():
    suppressed = [f for f in _run() if f.suppressed]
    assert len(suppressed) <= MAX_SUPPRESSIONS, (
        f"{len(suppressed)} inline suppressions — over the {MAX_SUPPRESSIONS} "
        f"budget; fix violations instead of allowing them"
    )
    for finding in suppressed:
        assert finding.suppression_reason, finding.render()
