"""close-contract: dereferencing released state needs a closed guard."""

VIOLATION = """
    class Store:
        def __init__(self, buf):
            self._closed = False
            self._buf = buf

        def close(self):
            self._closed = True
            self._buf = None

        def read(self, i):
            return self._buf[i]
"""

CLEAN_TWIN = """
    class Store:
        def __init__(self, buf):
            self._closed = False
            self._buf = buf

        def close(self):
            self._closed = True
            self._buf = None

        def read(self, i):
            if self._closed:
                raise ValueError("closed")
            return self._buf[i]
"""


def test_fires_without_guard(active):
    findings = active({"store.py": VIOLATION}, rule="close-contract")
    assert len(findings) == 1
    assert "_buf" in findings[0].message
    assert "read" in findings[0].message


def test_quiet_with_closed_check(active):
    assert active({"store.py": CLEAN_TWIN}, rule="close-contract") == []


def test_sentinel_released_attrs_guard_themselves(active):
    # Attributes swapped to the _CLOSED sentinel raise on access by
    # design — dereferencing them needs no extra check.
    assert (
        active(
            {
                "store.py": """
    class _ClosedData:
        def __getitem__(self, key):
            raise ValueError("closed")

    _CLOSED = _ClosedData()

    class Store:
        def __init__(self, buf):
            self._buf = buf

        def close(self):
            self._buf = _CLOSED

        def read(self, i):
            return self._buf[i]
    """
            },
            rule="close-contract",
        )
        == []
    )


def test_none_check_on_alias_is_a_guard(active):
    assert (
        active(
            {
                "store.py": """
    class Store:
        def __init__(self, delta):
            self._delta = delta

        def close(self):
            self._delta = None

        def size(self):
            delta = self._delta
            if delta is None:
                return 0
            return len(self._delta)
    """
            },
            rule="close-contract",
        )
        == []
    )


def test_checker_method_call_is_a_guard(active):
    assert (
        active(
            {
                "store.py": """
    class Store:
        def __init__(self, buf):
            self._closed = False
            self._buf = buf

        def close(self):
            self._closed = True
            self._buf = None

        def _check(self):
            if self._closed:
                raise ValueError("closed")

        def read(self, i):
            self._check()
            return self._buf[i]
    """
            },
            rule="close-contract",
        )
        == []
    )


def test_explicit_registration_exempts_method(active):
    # Methods designed to outlive close (materialised records staying
    # readable) register themselves instead of guarding.
    assert (
        active(
            {
                "store.py": """
    class Store:
        _analysis_close_exempt = ("read",)

        def __init__(self, buf):
            self._buf = buf

        def close(self):
            self._buf = None

        def read(self, i):
            return self._buf[i]
    """
            },
            rule="close-contract",
        )
        == []
    )
