"""lock-discipline: fires on unguarded touches, quiet on guarded twins."""

VIOLATION = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def value(self):
            return self._count
"""

CLEAN_TWIN = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def value(self):
            with self._lock:
                return self._count
"""


def test_fires_on_unguarded_read(active):
    findings = active({"counter.py": VIOLATION}, rule="lock-discipline")
    assert len(findings) == 1
    assert findings[0].rule == "lock-discipline"
    assert "_count" in findings[0].message
    assert "value" in findings[0].message


def test_quiet_on_clean_twin(active):
    assert active({"counter.py": CLEAN_TWIN}, rule="lock-discipline") == []


def test_subscript_store_counts_as_write(active):
    findings = active(
        {
            "table.py": """
    import threading

    class Table:
        def __init__(self):
            self._lock = threading.Lock()
            self._rows = {}

        def put(self, key, value):
            with self._lock:
                self._rows[key] = value

        def get(self, key):
            return self._rows.get(key)
    """
        },
        rule="lock-discipline",
    )
    assert len(findings) == 1
    assert "_rows" in findings[0].message


def test_condition_chain_and_local_alias_guards(active):
    assert (
        active(
            {
                "epoch.py": """
    import threading

    class _Epoch:
        def __init__(self):
            self.cond = threading.Condition()

    class Engine:
        def __init__(self):
            self._epoch = _Epoch()
            self._pins = {}

        def pin(self, key):
            with self._epoch.cond:
                self._pins[key] = 1

        def unpin(self, key):
            epoch = self._epoch
            with epoch.cond:
                self._pins.pop(key, None)
    """
            },
            rule="lock-discipline",
        )
        == []
    )


def test_contextmanager_call_guard(active):
    assert (
        active(
            {
                "guarded.py": """
    import threading
    from contextlib import contextmanager

    class Engine:
        def __init__(self):
            self._lock = threading.RLock()
            self._state = None

        @contextmanager
        def _query_guard(self):
            with self._lock:
                yield

        def swap(self, state):
            with self._lock:
                self._state = state

        def read(self):
            with self._query_guard():
                return self._state
    """
            },
            rule="lock-discipline",
        )
        == []
    )


def test_nested_functions_are_skipped(active):
    # A lock held lexically around a nested def is not held when the
    # closure runs — the rule must not treat the closure body as guarded,
    # nor flag it (deferred execution is out of scope).
    assert (
        active(
            {
                "deferred.py": """
    import threading

    class Spawner:
        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = []

        def submit(self, job):
            with self._lock:
                self._jobs.append(job)
                def later():
                    return self._jobs
                return later
    """
            },
            rule="lock-discipline",
        )
        == []
    )


def test_init_and_close_are_exempt(active):
    assert (
        active(
            {
                "lifecycle.py": """
    import threading

    class Holder:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = {}

        def put(self, key, value):
            with self._lock:
                self._data[key] = value

        def close(self):
            self._data = None
    """
            },
            rule="lock-discipline",
        )
        == []
    )


def test_public_attributes_not_policed(active):
    # Public attributes are API surface readable by external code; the
    # rule polices private (underscore) state only.
    assert (
        active(
            {
                "pub.py": """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()
            self.store = None

        def swap(self, store):
            with self._lock:
                self.store = store

        def read(self):
            return self.store
    """
            },
            rule="lock-discipline",
        )
        == []
    )
