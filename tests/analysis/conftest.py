import textwrap

import pytest

from repro.analysis import analyze


@pytest.fixture
def check(tmp_path):
    """Write ``sources`` ({relpath: code}) to disk and run the checker.

    Returns the full findings list (suppressed findings included, marked).
    """

    def run(sources, rule=None):
        for rel, text in sources.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        rule_ids = [rule] if rule is not None else None
        return analyze([tmp_path], rule_ids=rule_ids, root=tmp_path)

    return run


@pytest.fixture
def active(check):
    """Like ``check`` but returns only unsuppressed findings."""

    def run(sources, rule=None):
        return [f for f in check(sources, rule=rule) if not f.suppressed]

    return run
