"""determinism: hash order, wall clock, randomness, id() ordering."""

VIOLATION = """
    def drain(cursors):
        out = []
        for cursor in set(cursors):
            out.append(cursor.head)
        return out
"""

CLEAN_TWIN = """
    def drain(cursors):
        out = []
        for cursor in sorted(set(cursors)):
            out.append(cursor.head)
        return out
"""


def test_fires_on_set_iteration(active):
    findings = active({"topk/merge.py": VIOLATION}, rule="determinism")
    assert len(findings) == 1
    assert "hash order" in findings[0].message


def test_quiet_on_sorted_twin(active):
    assert active({"topk/merge.py": CLEAN_TWIN}, rule="determinism") == []


def test_out_of_scope_modules_ignored(active):
    # Determinism is scoped to the execution core; the same code in a
    # non-core module is not the parallel-identity surface.
    assert active({"core/helpers.py": VIOLATION}, rule="determinism") == []


def test_set_local_escaping_via_list(active):
    findings = active(
        {
            "storage/sharded.py": """
    def keys(rows):
        seen = set(rows)
        return list(seen)
    """
        },
        rule="determinism",
    )
    assert len(findings) == 1
    assert "list()" in findings[0].message


def test_wall_clock_fires_perf_counter_quiet(active):
    findings = active(
        {
            "storage/delta.py": """
    import time

    def stamp():
        return time.time()

    def elapsed(start):
        return time.perf_counter() - start
    """
        },
        rule="determinism",
    )
    assert len(findings) == 1
    assert "wall-clock" in findings[0].message


def test_unseeded_random_fires_seeded_quiet(active):
    findings = active(
        {
            "topk/sampler.py": """
    import random

    def jitter():
        return random.random()

    def rng():
        return random.Random(42)
    """
        },
        rule="determinism",
    )
    assert len(findings) == 1
    assert "random" in findings[0].message


def test_id_ordering_fires_identity_key_quiet(active):
    findings = active(
        {
            "topk/order.py": """
    def bad(cursors):
        return sorted(cursors, key=lambda c: id(c))

    def fine(cursors):
        by_identity = {}
        for cursor in cursors:
            by_identity[id(cursor)] = cursor
        return by_identity
    """
        },
        rule="determinism",
    )
    assert len(findings) == 1
    assert "ordering" in findings[0].message
