"""Framework behaviour: suppressions, CLI exit codes, JSON schema."""

import json
import textwrap

from repro.analysis import all_rules
from repro.analysis.cli import main
from repro.analysis.framework import META_RULE

VIOLATION = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def value(self):
            return self._count
"""


def _write(tmp_path, rel, text):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


# -- suppressions ----------------------------------------------------------


def test_trailing_suppression(check, tmp_path):
    findings = check(
        {
            "counter.py": VIOLATION.replace(
                "return self._count",
                "return self._count  # xkg: allow[lock-discipline] "
                "monitoring read; torn values are acceptable",
            )
        },
        rule="lock-discipline",
    )
    assert [f.suppressed for f in findings] == [True]
    assert "torn values" in findings[0].suppression_reason


def test_standalone_suppression_targets_next_line(check):
    findings = check(
        {
            "counter.py": VIOLATION.replace(
                "            return self._count",
                "            # xkg: allow[lock-discipline] monitoring read\n"
                "            return self._count",
            )
        },
        rule="lock-discipline",
    )
    assert [f.suppressed for f in findings] == [True]


def test_suppression_without_reason_is_a_finding(check):
    findings = check(
        {
            "counter.py": VIOLATION.replace(
                "return self._count",
                "return self._count  # xkg: allow[lock-discipline]",
            )
        }
    )
    rules = {f.rule for f in findings if not f.suppressed}
    # The original finding stays active AND the reasonless comment is
    # itself reported.
    assert rules == {"lock-discipline", META_RULE}


def test_suppression_naming_unknown_rule_is_a_finding(check):
    findings = check(
        {
            "clean.py": """
    # xkg: allow[no-such-rule] because reasons
    x = 1
    """
        }
    )
    assert [f.rule for f in findings] == [META_RULE]
    assert "no-such-rule" in findings[0].message


def test_suppression_for_wrong_rule_does_not_apply(check):
    findings = check(
        {
            "counter.py": VIOLATION.replace(
                "return self._count",
                "return self._count  # xkg: allow[determinism] wrong rule",
            )
        },
        rule="lock-discipline",
    )
    assert [f.suppressed for f in findings] == [False]


# -- CLI -------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    dirty = _write(tmp_path, "dirty/counter.py", VIOLATION)
    clean = _write(tmp_path, "clean/ok.py", "x = 1\n")
    assert main([str(dirty.parent)]) == 1
    capsys.readouterr()
    assert main([str(clean.parent)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path / "missing")]) == 2
    assert main([str(clean.parent), "--rule", "bogus"]) == 2


def test_cli_json_schema(tmp_path, capsys):
    _write(tmp_path, "counter.py", VIOLATION)
    _write(
        tmp_path,
        "suppressed.py",
        VIOLATION.replace(
            "return self._count",
            "return self._count  # xkg: allow[lock-discipline] stats read",
        ).replace("class Counter", "class Other"),
    )
    code = main([str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert set(payload) == {"version", "findings", "suppressed", "errors"}
    assert payload["errors"] == []
    assert len(payload["findings"]) == 1
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "path", "line", "message"}
    assert finding["rule"] == "lock-discipline"
    assert finding["path"].endswith("counter.py")
    assert isinstance(finding["line"], int)
    suppressed = payload["suppressed"][0]
    assert suppressed["suppressed"] is True
    assert suppressed["reason"] == "stats read"


def test_cli_rule_filter(tmp_path, capsys):
    _write(tmp_path, "counter.py", VIOLATION)
    assert main([str(tmp_path), "--rule", "determinism"]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), "--rule", "lock-discipline"]) == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


def test_syntax_errors_are_reported_not_fatal(tmp_path, capsys):
    _write(tmp_path, "broken.py", "def broken(:\n")
    _write(tmp_path, "ok.py", "x = 1\n")
    code = main([str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1  # file errors fail the run
    assert len(payload["errors"]) == 1
    assert "broken.py" in payload["errors"][0]


def test_registry_has_the_documented_rules():
    assert set(all_rules()) >= {
        "lock-discipline",
        "executor-lifecycle",
        "determinism",
        "close-contract",
        "stats-surface-drift",
    }
