"""executor-lifecycle: pools must reach a shutdown in a teardown path."""

VIOLATION = """
    from concurrent.futures import ThreadPoolExecutor

    class Service:
        def __init__(self):
            self._executor = ThreadPoolExecutor(max_workers=4)

        def close(self):
            pass
"""

CLEAN_TWIN = """
    from concurrent.futures import ThreadPoolExecutor

    class Service:
        def __init__(self):
            self._executor = ThreadPoolExecutor(max_workers=4)

        def close(self):
            self._executor.shutdown(wait=True)
"""


def test_fires_without_shutdown(active):
    findings = active({"svc.py": VIOLATION}, rule="executor-lifecycle")
    assert len(findings) == 1
    assert "_executor" in findings[0].message


def test_quiet_on_clean_twin(active):
    assert active({"svc.py": CLEAN_TWIN}, rule="executor-lifecycle") == []


def test_conditional_construction_is_traced(active):
    # `self._executor = ThreadPoolExecutor(...) if workers else None`
    assert (
        active(
            {
                "svc.py": """
    from concurrent.futures import ThreadPoolExecutor

    class Service:
        def __init__(self, workers):
            self._executor = (
                ThreadPoolExecutor(max_workers=workers) if workers else None
            )

        def close(self):
            if self._executor is not None:
                self._executor.shutdown(wait=True)
    """
            },
            rule="executor-lifecycle",
        )
        == []
    )


def test_swap_then_shutdown_teardown(active):
    assert (
        active(
            {
                "svc.py": """
    from concurrent.futures import ProcessPoolExecutor

    class Service:
        def __init__(self):
            self._pool = ProcessPoolExecutor()

        def stop(self):
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False)
    """
            },
            rule="executor-lifecycle",
        )
        == []
    )


def test_teardown_helper_one_level_deep(active):
    assert (
        active(
            {
                "svc.py": """
    from concurrent.futures import ThreadPoolExecutor

    class Service:
        def __init__(self):
            self._executor = ThreadPoolExecutor()

        def _release(self):
            self._executor.shutdown()

        def close(self):
            self._release()
    """
            },
            rule="executor-lifecycle",
        )
        == []
    )


def test_with_block_is_fine(active):
    assert (
        active(
            {
                "job.py": """
    from concurrent.futures import ThreadPoolExecutor

    def run(tasks):
        with ThreadPoolExecutor() as pool:
            return list(pool.map(str, tasks))
    """
            },
            rule="executor-lifecycle",
        )
        == []
    )


def test_local_without_shutdown_fires(active):
    findings = active(
        {
            "job.py": """
    from concurrent.futures import ThreadPoolExecutor

    def run(tasks):
        pool = ThreadPoolExecutor()
        return list(pool.map(str, tasks))
    """
        },
        rule="executor-lifecycle",
    )
    assert len(findings) == 1
    assert "pool" in findings[0].message


def test_local_with_shutdown_is_fine(active):
    assert (
        active(
            {
                "job.py": """
    from concurrent.futures import ThreadPoolExecutor

    def run(tasks):
        pool = ThreadPoolExecutor()
        try:
            return list(pool.map(str, tasks))
        finally:
            pool.shutdown(wait=True)
    """
            },
            rule="executor-lifecycle",
        )
        == []
    )
