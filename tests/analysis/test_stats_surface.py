"""stats-surface-drift: QueryStats fields must reach every surface."""

RESULTS = """
    from dataclasses import dataclass

    @dataclass
    class QueryStats:
        sorted_accesses: int = 0
        delta_hits: int = 0
"""

METRICS_GENERIC = """
    from dataclasses import fields
    from repro.core.results import QueryStats

    def families(stats):
        return {f.name: getattr(stats, f.name) for f in fields(QueryStats)}
"""

METRICS_MISSING = """
    def families(stats):
        return {"sorted_accesses": stats.sorted_accesses}
"""

INTERFACE_FULL = """
    def render(stats):
        return [stats.sorted_accesses, stats.delta_hits]
"""


def test_fires_when_surface_misses_a_field(active):
    findings = active(
        {
            "core/results.py": RESULTS,
            "serve/metrics.py": METRICS_MISSING,
            "demo/interface.py": INTERFACE_FULL,
        },
        rule="stats-surface-drift",
    )
    assert len(findings) == 1
    assert "delta_hits" in findings[0].message
    assert "metrics" in findings[0].message
    # Anchored at the field's declaration so the fix lands there.
    assert findings[0].path.endswith("core/results.py")


def test_quiet_when_every_field_is_surfaced(active):
    assert (
        active(
            {
                "core/results.py": RESULTS,
                "serve/metrics.py": METRICS_GENERIC,
                "demo/interface.py": INTERFACE_FULL,
            },
            rule="stats-surface-drift",
        )
        == []
    )


def test_generic_fields_iteration_counts_as_full_coverage(active):
    assert (
        active(
            {
                "core/results.py": RESULTS,
                "serve/metrics.py": METRICS_GENERIC,
                "demo/interface.py": """
    from dataclasses import fields
    from repro.core.results import QueryStats

    def render(stats):
        return [getattr(stats, f.name) for f in fields(QueryStats)]
    """,
            },
            rule="stats-surface-drift",
        )
        == []
    )


def test_absent_surface_files_do_not_fire(active):
    # Checking a subtree that holds only the dataclass must not invent
    # drift against surfaces outside the run.
    assert (
        active({"core/results.py": RESULTS}, rule="stats-surface-drift") == []
    )
