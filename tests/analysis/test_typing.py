"""mypy over the typed seams — runs wherever mypy is installed.

The seam files and strictness knobs live in ``pyproject.toml``
(``[tool.mypy]``); this test just drives them, so CI (which installs
the dev extras) and local environments with mypy agree on one config.
Environments without mypy skip — the CI `analysis` job is the
enforcement point.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_typed_seams_pass_mypy():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
