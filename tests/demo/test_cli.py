"""Unit tests for the trinit CLI."""

import pytest

from repro.demo.cli import main


class TestCli:
    def test_query_mode(self, capsys):
        code = main(["--query", "AlbertEinstein bornIn ?x"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ulm" in out

    def test_explain_flag(self, capsys):
        code = main(
            [
                "--query",
                "AlbertEinstein affiliation ?x ; ?x member IvyLeague",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Answer Explanation" in out
        assert "housed in" in out

    def test_suggest_flag(self, capsys):
        code = main(["--query", "?x 'born in' Ulm", "--suggest"])
        assert code == 0
        assert "Query Suggestions" in capsys.readouterr().out

    def test_rule_flag(self, capsys):
        code = main(
            [
                "--query",
                "AlbertEinstein worksAt ?x",
                "--rule",
                "?x worksAt ?y => ?x affiliation ?y @ 0.5",
            ]
        )
        assert code == 0
        assert "IAS" in capsys.readouterr().out

    def test_k_flag(self, capsys):
        code = main(["--query", "?x type ?y", "--k", "2"])
        assert code == 0

    def test_no_query_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["--dataset", "mars", "--query", "?x p ?y"])
