"""Unit tests for the Figure 5/6 screen renderings."""

import pytest

from repro.demo.interface import DemoSession
from repro.kg.paper_example import paper_engine


@pytest.fixture()
def session():
    return DemoSession(paper_engine())


class TestQueryScreen:
    def test_renders_patterns_and_answers(self, session):
        screen = session.render_query_screen(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        assert "Query Interface" in screen
        assert "affiliation" in screen
        assert "PrincetonUniversity" in screen

    def test_relaxed_answers_marked(self, session):
        screen = session.render_query_screen(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        assert "1.*" in screen  # the relaxation marker

    def test_empty_results_rendered(self, session):
        screen = session.render_query_screen("?x bornIn Atlantis")
        assert "(no answers)" in screen

    def test_user_rules_listed(self, session):
        session.add_user_rule("?x worksAt ?y => ?x affiliation ?y @ 0.5")
        screen = session.render_query_screen("AlbertEinstein worksAt ?x")
        assert "worksAt" in screen
        assert "IAS" in screen

    def test_deterministic(self, session):
        q = "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        assert session.render_query_screen(q) == session.render_query_screen(q)


class TestExplanationScreen:
    def test_renders_provenance(self, session):
        answers = session.run("AlbertEinstein affiliation ?x ; ?x member IvyLeague")
        screen = session.render_explanation_screen(answers.top(), answers.query)
        assert "Answer Explanation" in screen
        assert "housed in" in screen


class TestSuggestionScreen:
    def test_renders(self, session):
        session.run("?x 'born in' Ulm")
        screen = session.render_suggestion_screen("?x 'born in' Ulm")
        assert "Query Suggestions" in screen
        assert "bornIn" in screen
