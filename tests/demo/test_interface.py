"""Unit tests for the Figure 5/6 screen renderings."""

import pytest

from repro.demo.interface import DemoSession
from repro.kg.paper_example import paper_engine


@pytest.fixture()
def session():
    return DemoSession(paper_engine())


class TestQueryScreen:
    def test_renders_patterns_and_answers(self, session):
        screen = session.render_query_screen(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        assert "Query Interface" in screen
        assert "affiliation" in screen
        assert "PrincetonUniversity" in screen

    def test_relaxed_answers_marked(self, session):
        screen = session.render_query_screen(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        assert "1.*" in screen  # the relaxation marker

    def test_empty_results_rendered(self, session):
        screen = session.render_query_screen("?x bornIn Atlantis")
        assert "(no answers)" in screen

    def test_user_rules_listed(self, session):
        session.add_user_rule("?x worksAt ?y => ?x affiliation ?y @ 0.5")
        screen = session.render_query_screen("AlbertEinstein worksAt ?x")
        assert "worksAt" in screen
        assert "IAS" in screen

    def test_deterministic(self, session):
        q = "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        assert session.render_query_screen(q) == session.render_query_screen(q)


class TestExplanationScreen:
    def test_renders_provenance(self, session):
        answers = session.run("AlbertEinstein affiliation ?x ; ?x member IvyLeague")
        screen = session.render_explanation_screen(answers.top(), answers.query)
        assert "Answer Explanation" in screen
        assert "housed in" in screen


class TestSuggestionScreen:
    def test_renders(self, session):
        session.run("?x 'born in' Ulm")
        screen = session.render_suggestion_screen("?x 'born in' Ulm")
        assert "Query Suggestions" in screen
        assert "bornIn" in screen


class TestStatsScreen:
    def test_requires_a_query_first(self, session):
        from repro.errors import TrinitError

        with pytest.raises(TrinitError):
            session.render_stats_screen()

    def test_renders_counters(self, session):
        session.run("?x bornIn ?y")
        screen = session.render_stats_screen()
        assert "Query Statistics" in screen
        assert "sorted accesses" in screen
        assert "segments touched" in screen
        assert "postings materialized" in screen

    def test_segment_counters_filled_on_sharded_engine(self):
        from repro.core.engine import EngineConfig, TriniT
        from repro.kg.paper_example import paper_store

        engine = TriniT(
            paper_store(),
            config=EngineConfig(storage_backend="sharded", merge_batch=4),
        )
        sharded = DemoSession(engine)
        sharded.run("?x bornIn ?y")
        screen = sharded.render_stats_screen()
        assert "sharded backend" in screen
        # counters are non-zero on a segmented store
        for line in screen.splitlines():
            if "segments touched" in line:
                assert line.split()[-2] != "0"

    def test_cumulative_over_more(self, session):
        session.run("?x bornIn ?y", k=1)
        first = session.render_stats_screen()
        session.more(1)
        second = session.render_stats_screen()
        assert first != second  # resumes counter advanced

    def test_delta_and_generation_lines(self, session):
        session.ingest("NewPerson bornIn Ulm", 0.8)
        session.run("?x bornIn Ulm")
        screen = session.render_stats_screen()
        assert "delta hits" in screen
        assert "live delta" in screen
        assert "generation" in screen


class TestIngest:
    def test_ingest_visible_to_next_query(self, session):
        message = session.ingest("NewPerson bornIn Ulm", 0.8)
        assert "ingested" in message
        assert "NewPerson" in message
        assert "delta 1 statements" in message
        screen = session.render_query_screen("?x bornIn Ulm")
        assert "NewPerson" in screen

    def test_ingest_rejects_variables(self, session):
        from repro.errors import TrinitError

        with pytest.raises(TrinitError, match="ground"):
            session.ingest("?x bornIn Ulm")
