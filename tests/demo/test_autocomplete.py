"""Unit tests for auto-completion."""

import pytest

from repro.demo.autocomplete import AutoCompleter


@pytest.fixture(scope="module")
def completer(paper_store_fixture):
    return AutoCompleter(paper_store_fixture)


class TestResourceCompletion:
    def test_prefix(self, completer):
        assert "AlbertEinstein" in completer.complete_resource("Alb")

    def test_case_insensitive(self, completer):
        assert "AlbertEinstein" in completer.complete_resource("alb")

    def test_limit(self, completer):
        assert len(completer.complete_resource("", limit=3)) == 3

    def test_no_match(self, completer):
        assert completer.complete_resource("Zzz") == []

    def test_sorted(self, completer):
        results = completer.complete_resource("")
        assert results == sorted(results)


class TestPhraseCompletion:
    def test_phrase_prefix(self, completer):
        assert "housed in" in completer.complete_phrase("hou")

    def test_word_level_fallback(self, completer):
        # 'nobel' is not a phrase prefix but occurs inside one.
        assert any("nobel" in p for p in completer.complete_phrase("nobel"))

    def test_empty_prefix_lists_phrases(self, completer):
        assert completer.complete_phrase("", limit=2)


class TestFieldCompletion:
    def test_variable_no_completion(self, completer):
        assert completer.complete("?x") == []

    def test_quote_routes_to_phrases(self, completer):
        results = completer.complete("'housed")
        assert "'housed in'" in results

    def test_bareword_routes_to_resources(self, completer):
        assert "AlbertEinstein" in completer.complete("Albert")
