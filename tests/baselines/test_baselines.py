"""Unit tests for the four baseline systems."""

import pytest

from repro.core.parser import parse_query
from repro.core.terms import Resource, Variable
from repro.eval.benchmark import user_alias_rules


@pytest.fixture(scope="module")
def harness(tiny_harness):
    return tiny_harness


class TestStrictSparql:
    def test_answers_direct_queries(self, harness):
        world = harness.world
        baseline = harness.strict_baseline
        # A bornIn fact the KG kept.
        kept = harness.kg.kept_facts["bornInCity"][0]
        query = parse_query(f"?x bornIn {kept.obj}")
        ranked = baseline.rank(query, Variable("x"), 10)
        assert Resource(kept.subject) in ranked

    def test_fails_token_queries(self, harness):
        query = parse_query("?x 'works at' ?y")
        assert harness.strict_baseline.rank(query, Variable("x"), 10) == []

    def test_fails_unknown_predicates(self, harness):
        query = parse_query("?x worksFor ?y")
        assert harness.strict_baseline.rank(query, Variable("x"), 10) == []

    def test_respects_k(self, harness):
        query = parse_query("?x type physicist")
        assert len(harness.strict_baseline.rank(query, Variable("x"), 3)) <= 3


class TestLmEntitySearch:
    def test_finds_textually_associated_entities(self, harness):
        world = harness.world
        fact = world.facts_of("worksAt")[0]
        query = parse_query(f"?x affiliation {fact.obj}")
        ranked = harness.lm_baseline.rank(query, Variable("x"), 10)
        assert ranked  # always returns something

    def test_cannot_represent_joins(self, harness):
        """The ranking for a join query ignores the join structure: it is
        the same as for the flattened bag of words."""
        world = harness.world
        city = world.cities[0]
        join_query = parse_query(
            f"?p affiliation ?o ; ?o locatedIn {city.id}"
        )
        flat_query = parse_query(f"?p 'affiliation located in' {city.id}")
        a = harness.lm_baseline.rank(join_query, Variable("p"), 5)
        b = harness.lm_baseline.rank(flat_query, Variable("p"), 5)
        assert a == b

    def test_k_respected(self, harness):
        query = parse_query(f"?x affiliation {harness.world.universities[0].id}")
        assert len(harness.lm_baseline.rank(query, Variable("x"), 4)) == 4


class TestSlq:
    def test_identity_transformation_works(self, harness):
        kept = harness.kg.kept_facts["bornInCity"][0]
        query = parse_query(f"?x bornIn {kept.obj}")
        ranked = harness.slq_baseline.rank(query, Variable("x"), 10)
        assert Resource(kept.subject) in ranked

    def test_label_similarity_transformation(self, harness):
        """'birthPlace'-style label overlap: bornIn ≈ 'born in' phrasing is
        out of scope, but bornOnDate ≈ bornOn-style overlaps are found via
        shared label tokens."""
        kept = harness.kg.kept_facts["bornInCity"][0]
        # birthCity shares the token 'city'… use bornIn directly with a
        # suffix variant instead: the transformation must at least keep
        # exact matches ranked first.
        query = parse_query(f"?x bornIn {kept.obj}")
        ranked = harness.slq_baseline.rank(query, Variable("x"), 5)
        assert ranked

    def test_no_xkg_access(self, harness):
        world = harness.world
        fact = world.facts_of("lecturedAt")[0]
        query = parse_query(f"{fact.subject} lecturedAt ?x")
        ranked = harness.slq_baseline.rank(query, Variable("x"), 10)
        assert Resource(fact.obj) not in ranked


class TestQars:
    def test_relaxation_on_kg_works(self, harness):
        """The alias hasAdvisor→hasStudent fires on the KG-only store."""
        world = harness.world
        for student, advisor in sorted(world.pairs("hasAdvisor")):
            kept = any(
                f.subject == student
                for f in harness.kg.kept_facts["hasAdvisor"]
            )
            if kept:
                query = parse_query(f"{student} hasAdvisor ?x")
                ranked = harness.qars_baseline.rank(query, Variable("x"), 5)
                assert Resource(advisor) in ranked
                return
        pytest.skip("no kept advisor fact at this seed")

    def test_no_xkg_answers(self, harness):
        fact = harness.world.facts_of("lecturedAt")[0]
        query = parse_query(f"{fact.subject} 'lectured at' ?x")
        ranked = harness.qars_baseline.rank(query, Variable("x"), 10)
        assert Resource(fact.obj) not in ranked


class TestTrinitSystem:
    def test_rank_respects_target_variable(self, harness):
        world = harness.world
        city = world.cities[0]
        query = parse_query(f"?p affiliation ?o ; ?o locatedIn {city.id}")
        people = harness.trinit_system.rank(query, Variable("p"), 5)
        orgs = harness.trinit_system.rank(query, Variable("o"), 5)
        assert set(people) != set(orgs) or not people
