"""Unit tests for the n-ary rank join."""

import pytest

from repro.core.parser import parse_query
from repro.core.results import PatternMatchInfo, binding_key
from repro.core.terms import Resource, Variable
from repro.core.triples import TriplePattern
from repro.scoring.answer_scoring import AnswerAggregator
from repro.topk.cursors import ScoredMatch
from repro.topk.rank_join import NaryRankJoin
from repro.util.heap import DistinctTopKTracker

X, Y = Variable("x"), Variable("y")


class ListCursor:
    def __init__(self, items):
        self._items = list(items)
        self._pos = 0
        self.pops = 0

    def peek(self):
        if self._pos < len(self._items):
            return self._items[self._pos].score
        return None

    def ensure_exact(self):
        return True

    def pop(self):
        if self._pos >= len(self._items):
            return None
        self.pops += 1
        item = self._items[self._pos]
        self._pos += 1
        return item


def match(var_values: dict, score: float) -> ScoredMatch:
    binding = binding_key({v: Resource(name) for v, name in var_values.items()})
    info = PatternMatchInfo(
        TriplePattern(X, Resource("p"), Y), (), score
    )
    return ScoredMatch(binding, score, info)


def run_join(query_text, streams, k=10, exhaustive=False, weight=1.0):
    query = parse_query(query_text)
    aggregator = AnswerAggregator()
    tracker = DistinctTopKTracker(k)
    join = NaryRankJoin(
        query,
        streams,
        rewriting_weight=weight,
        aggregator=aggregator,
        tracker=tracker,
        exhaustive=exhaustive,
    )
    join.run()
    return aggregator.ranked_answers(k)


class TestJoinSemantics:
    def test_simple_join(self):
        left = ListCursor([match({X: "A", Y: "B"}, 0.9), match({X: "C", Y: "D"}, 0.5)])
        right = ListCursor([match({Y: "B"}, 0.8), match({Y: "Z"}, 0.7)])
        answers = run_join("?x p ?y ; ?y q IvyLeague", [left, right])
        assert len(answers) == 1
        assert answers[0].value("x") == Resource("A")
        assert answers[0].score == pytest.approx(0.9 * 0.8)

    def test_incompatible_bindings_no_answer(self):
        left = ListCursor([match({X: "A", Y: "B"}, 0.9)])
        right = ListCursor([match({Y: "C"}, 0.8)])
        assert run_join("?x p ?y ; ?y q G", [left, right]) == []

    def test_rewriting_weight_attenuates(self):
        left = ListCursor([match({X: "A", Y: "B"}, 1.0)])
        right = ListCursor([match({Y: "B"}, 1.0)])
        answers = run_join("?x p ?y ; ?y q G", [left, right], weight=0.5)
        assert answers[0].score == pytest.approx(0.5)

    def test_cartesian_free_vars_combine(self):
        # Single pattern: all matches become answers directly.
        stream = ListCursor([match({X: "A", Y: "B"}, 0.9), match({X: "C", Y: "D"}, 0.4)])
        answers = run_join("?x p ?y", [stream])
        assert len(answers) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_join("?x p ?y ; ?y q G", [ListCursor([])])

    def test_three_way_join(self):
        s1 = ListCursor([match({X: "A"}, 0.9)])
        s2 = ListCursor([match({X: "A", Y: "B"}, 0.8)])
        s3 = ListCursor([match({Y: "B"}, 0.7)])
        answers = run_join("?x p E ; ?x q ?y ; ?y r F", [s1, s2, s3])
        assert len(answers) == 1
        assert answers[0].score == pytest.approx(0.9 * 0.8 * 0.7)


class TestTermination:
    def test_empty_stream_short_circuits(self):
        busy = ListCursor([match({X: "A", Y: f"B{i}"}, 1.0 - i / 100) for i in range(50)])
        empty = ListCursor([])
        run_join("?x p ?y ; ?y q G", [busy, empty])
        assert busy.pops == 0  # join returns before consuming anything

    def test_threshold_stops_early(self):
        # k=1: after the best combination is found, bounds collapse and the
        # tail of both streams stays untouched.
        left = ListCursor(
            [match({X: "A", Y: "B"}, 0.9)]
            + [match({X: f"L{i}", Y: f"M{i}"}, 0.1) for i in range(50)]
        )
        right = ListCursor(
            [match({Y: "B"}, 0.9)]
            + [match({Y: f"M{i}"}, 0.05) for i in range(50)]
        )
        run_join("?x p ?y ; ?y q G", [left, right], k=1)
        assert left.pops + right.pops < 20

    def test_exhaustive_consumes_everything(self):
        left = ListCursor(
            [match({X: "A", Y: "B"}, 0.9)]
            + [match({X: f"L{i}", Y: f"M{i}"}, 0.1) for i in range(20)]
        )
        right = ListCursor([match({Y: "B"}, 0.9)])
        run_join("?x p ?y ; ?y q G", [left, right], k=1, exhaustive=True)
        assert left.pops == 21

    def test_upper_bound_monotone(self):
        query = parse_query("?x p ?y ; ?y q G")
        left = ListCursor([match({X: f"A{i}", Y: f"B{i}"}, 1.0 - i / 10) for i in range(5)])
        right = ListCursor([match({Y: f"B{i}"}, 0.9 - i / 10) for i in range(5)])
        join = NaryRankJoin(
            query,
            [left, right],
            aggregator=AnswerAggregator(),
            tracker=DistinctTopKTracker(3),
        )
        bounds = []
        original_pop_left = left.pop

        # Track the bound after every pop by instrumenting run() manually.
        previous = float("inf")
        while True:
            peeks = [left.peek(), right.peek()]
            if all(p is None for p in peeks):
                break
            bound = join.upper_bound(peeks)
            assert bound <= previous + 1e-12
            previous = bound
            live = [i for i, p in enumerate(peeks) if p is not None]
            index = max(live, key=lambda i: peeks[i])
            item = (left, right)[index].pop()
            if item is None:
                continue
            if join._best[index] is None:
                join._best[index] = item.score
            join._seen[index][item.binding] = item
            bounds.append(bound)
