"""Edge cases of the block-at-a-time execution path.

The property suite pins block execution against the per-item reference in
bulk; these tests nail the corners individually — empty posting lists,
score ties straddling a block boundary exactly at the k-threshold, the
delta segment's thread-side-only (and never cached) preparation, stale
cached handles after a backend closes, and the observability counters
(``blocks_decoded`` / ``block_cache_hits``).
"""

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.errors import StorageError
from repro.topk.kernels import HotBlockCache


def _engine(rows, **config):
    config.setdefault("parallelism", 1)
    config.setdefault("executor_kind", "serial")
    return TriniT.from_triples(
        [],
        [
            (Triple(Resource(s), Resource(p), Resource(o)), None, conf)
            for s, p, o, conf in rows
        ],
        config=EngineConfig(**config),
    )


def signature(answers):
    return [(a.binding, a.score) for a in answers]


ROWS = [
    (f"E{i % 11}", ("bornIn", "livesIn", "type")[i % 3], f"E{(i * 7) % 13}",
     0.05 + (i % 17) / 20)
    for i in range(120)
]


def test_empty_posting_list_scores_no_blocks():
    engine = _engine(ROWS, storage_backend="columnar")
    try:
        stream = engine.stream("?x hasNoSuchPredicate ?y")
        assert list(stream.next_k(5)) == []
        assert stream.stats.blocks_decoded == 0
    finally:
        engine.close()


@pytest.mark.parametrize("backend", ["dict", "columnar", "sharded"])
def test_tie_straddling_block_boundary_at_threshold(backend):
    # Every statement carries the same confidence, so the whole posting
    # list is one score tie; with block_size=2 the k-threshold falls inside
    # a tie run that straddles block boundaries.  The block path must cut
    # the identical top-k the per-item reference does.
    rows = [(f"A{i}", "knows", f"B{i}", 0.5) for i in range(9)]
    reference = _engine(
        rows, storage_backend=backend, merge_batch=1, block_size=1
    )
    blocked = _engine(rows, storage_backend=backend, block_size=2)
    try:
        for k in (1, 3, 4, 8, 9):
            assert signature(blocked.ask("?x knows ?y", k=k)) == signature(
                reference.ask("?x knows ?y", k=k)
            )
    finally:
        reference.close()
        blocked.close()


def test_delta_blocks_thread_side_and_never_cached():
    engine = _engine(ROWS, storage_backend="sharded")
    try:
        engine.ingest(
            [Triple(Resource("Fresh"), Resource("bornIn"), Resource("E1"))],
            confidence=0.9,
        )
        answers = engine.ask("?x bornIn ?y", k=50)
        assert ("Fresh", "E1") in {
            tuple(term.name for _v, term in a.binding) for a in answers
        }
        # The delta stream uses segment_index -1; no cache key may carry it.
        cached_segments = {
            key[1] for key in engine._block_cache._entries
        }
        assert -1 not in cached_segments
        # Frozen segment blocks of the same lookup did get cached.
        assert len(engine._block_cache) > 0
    finally:
        engine.close()


def test_repeat_query_hits_block_cache():
    engine = _engine(ROWS, storage_backend="sharded")
    try:
        first = engine.stream("?x bornIn ?y")
        reference = signature(first.next_k(30))
        # Rewritings of one query re-probe the same lookup, so even the
        # first query may hit blocks its own cursors cached.
        first_hits = engine._block_cache.hits
        second = engine.stream("?x bornIn ?y")
        assert signature(second.next_k(30)) == reference
        assert second.stats.block_cache_hits > 0
        assert engine._block_cache.hits > first_hits
    finally:
        engine.close()


def test_blocks_decoded_counter_observable():
    engine = _engine(ROWS, storage_backend="columnar")
    try:
        stream = engine.stream("?x bornIn ?y")
        stream.next_k(10)
        assert stream.stats.blocks_decoded > 0
    finally:
        engine.close()


def test_per_item_path_decodes_no_blocks():
    engine = _engine(ROWS, storage_backend="columnar", block_size=1)
    try:
        stream = engine.stream("?x bornIn ?y")
        assert len(list(stream.next_k(10))) == 10
        assert stream.stats.blocks_decoded == 0
        assert stream.stats.block_cache_hits == 0
    finally:
        engine.close()


def test_posting_block_after_close_raises_storage_error():
    engine = _engine(ROWS, storage_backend="sharded")
    backend = engine.store.backend
    engine.close()
    with pytest.raises(StorageError):
        backend.posting_block(0, (False, False, False), (), 0, 4)
    segment_engine = _engine(ROWS, storage_backend="columnar")
    columnar = segment_engine.store.backend
    segment_engine.close()
    with pytest.raises(StorageError):
        columnar.posting_block((False, False, False), (), 0, 4)


def test_cached_blocks_survive_backend_close():
    # Cached blocks are self-owned arrays, not views over the backend's
    # buffers: a consumer holding the cache may read them after the
    # producing backend is gone.
    engine = _engine(ROWS, storage_backend="sharded")
    cache: HotBlockCache = engine._block_cache
    engine.ask("?x bornIn ?y", k=30)
    entries = list(cache._entries.items())
    assert entries
    engine.close()  # closes the store; engine.close also clears its cache
    for key, (kw, kg) in entries:
        assert len(kw) == len(kg)
        assert list(kw)  # reading the arrays cannot touch released views


def test_swap_quiet_point_clears_cache():
    engine = _engine(ROWS, storage_backend="sharded")
    try:
        engine.ask("?x bornIn ?y", k=30)
        assert len(engine._block_cache) > 0
        engine.ingest(
            [Triple(Resource("New"), Resource("type"), Resource("E2"))]
        )
        engine.compact()
        assert len(engine._block_cache) == 0
    finally:
        engine.close()


def test_block_size_validation():
    engine = _engine(ROWS[:5], storage_backend="columnar")
    try:
        with pytest.raises(StorageError):
            engine.store.configure_blocks(0)
    finally:
        engine.close()
