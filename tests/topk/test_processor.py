"""Unit tests for the top-k processor on hand-built stores."""

import pytest

from repro.core.parser import parse_query, parse_rule
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Provenance, Triple
from repro.errors import TopKError
from repro.relax.rules import RuleSet
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor


@pytest.fixture()
def processor(frozen_small_store):
    return TopKProcessor(frozen_small_store)


class TestConfig:
    def test_bad_k(self):
        with pytest.raises(TopKError):
            ProcessorConfig(k=0)

    def test_bad_depth(self):
        with pytest.raises(TopKError):
            ProcessorConfig(max_rewrite_depth=-1)

    def test_requires_frozen(self, small_store):
        with pytest.raises(TopKError):
            TopKProcessor(small_store)


class TestExactQueries:
    def test_single_pattern(self, processor):
        answers = processor.query(parse_query("AlbertEinstein bornIn ?x"))
        assert len(answers) == 1
        assert answers.top().value("x") == Resource("Ulm")

    def test_join(self, processor):
        answers = processor.query(
            parse_query("?p bornIn ?c ; ?c locatedIn Germany")
        )
        assert len(answers) == 1
        assert answers.top().value("p") == Resource("AlbertEinstein")

    def test_k_limits_results(self, processor):
        answers = processor.query(parse_query("?x bornIn ?y"), k=1)
        assert len(answers) == 1

    def test_rejects_bad_k(self, processor):
        with pytest.raises(TopKError):
            processor.query(parse_query("?x bornIn ?y"), k=0)

    def test_empty_result(self, processor):
        answers = processor.query(parse_query("?x bornIn Atlantis"))
        assert answers.is_empty

    def test_fully_bound_assertion_join(self, processor):
        answers = processor.query(
            parse_query("AlbertEinstein bornIn Ulm ; ?x bornIn Ulm")
        )
        assert len(answers) == 1

    def test_scores_descending(self, processor):
        answers = processor.query(parse_query("?x 'lectured at' ?y"))
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)


class TestTokenMatching:
    def test_fuzzy_phrase_expansion(self, processor):
        # 'lectures at' should reach the stored 'lectured at' phrase.
        answers = processor.query(
            parse_query("AlbertEinstein 'lectures at' ?x")
        )
        assert not answers.is_empty
        assert answers.top().value("x") == Resource("PrincetonUniversity")

    def test_token_to_resource_translation(self, processor):
        # Token 'born in' taps the canonical bornIn predicate.
        answers = processor.query(parse_query("AlbertEinstein 'born in' ?x"))
        assert not answers.is_empty
        assert answers.top().value("x") == Resource("Ulm")

    def test_token_expansion_ablation(self, frozen_small_store):
        config = ProcessorConfig(use_token_expansion=False)
        processor = TopKProcessor(frozen_small_store, config=config)
        answers = processor.query(parse_query("AlbertEinstein 'lectures at' ?x"))
        assert answers.is_empty

    def test_unknown_resource_fallback(self, processor):
        # lecturedAt is not a stored predicate; the fallback reads it as
        # the phrase 'lectured at'.
        answers = processor.query(parse_query("AlbertEinstein lecturedAt ?x"))
        assert not answers.is_empty

    def test_unknown_resource_fallback_ablation(self, frozen_small_store):
        config = ProcessorConfig(unknown_resource_fallback=False)
        processor = TopKProcessor(frozen_small_store, config=config)
        answers = processor.query(parse_query("AlbertEinstein lecturedAt ?x"))
        assert answers.is_empty


class TestRelaxation:
    def _processor_with_rules(self, store, *rule_texts, **config_kwargs):
        rules = RuleSet(parse_rule(t) for t in rule_texts)
        config = ProcessorConfig(**config_kwargs) if config_kwargs else None
        return TopKProcessor(store, rules=rules, config=config)

    def test_single_pattern_rule(self, frozen_small_store):
        processor = self._processor_with_rules(
            frozen_small_store,
            "?x affiliation ?y => ?x 'lectured at' ?y @ 0.7",
        )
        answers = processor.query(parse_query("MarieCurie affiliation ?x"))
        # Exact answer (Sorbonne via affiliation) must rank first; the
        # relaxed path adds nothing new here but must not crash or distort.
        assert answers.top().value("x") == Resource("Sorbonne")

    def test_relaxed_answer_attenuated(self, frozen_small_store):
        processor = self._processor_with_rules(
            frozen_small_store,
            "?x worksAt ?y => ?x affiliation ?y @ 0.5",
        )
        exact = processor.query(parse_query("AlbertEinstein affiliation ?x"))
        relaxed = processor.query(parse_query("AlbertEinstein worksAt ?x"))
        assert relaxed.top().value("x") == exact.top().value("x")
        assert relaxed.top().score < exact.top().score

    def test_relaxation_ablation(self, frozen_small_store):
        processor = self._processor_with_rules(
            frozen_small_store,
            "?x worksAt ?y => ?x affiliation ?y @ 0.5",
            use_relaxation=False,
        )
        answers = processor.query(parse_query("AlbertEinstein worksAt ?x"))
        assert answers.is_empty

    def test_multi_pattern_rule_with_condition(self):
        store = TripleStore()
        ae, born = Resource("AlbertEinstein"), Resource("bornIn")
        t, located = Resource("type"), Resource("locatedIn")
        store.add(Triple(ae, born, Resource("Ulm")))
        store.add(Triple(Resource("Ulm"), t, Resource("city")))
        store.add(Triple(Resource("Ulm"), located, Resource("Germany")))
        store.add(Triple(Resource("Germany"), t, Resource("country")))
        store.freeze()
        processor = self._processor_with_rules(
            store,
            "?x bornIn ?y ; ?y type country => "
            "?x bornIn ?z ; ?z type city ; ?z locatedIn ?y @ 1.0",
        )
        answers = processor.query(parse_query("?x bornIn Germany"))
        assert answers.top().value("x") == ae

    def test_max_over_derivations(self, frozen_small_store):
        # Two rules reach the same answer with different weights; the
        # answer's score must reflect the heavier path.
        processor = self._processor_with_rules(
            frozen_small_store,
            "?x worksAt ?y => ?x affiliation ?y @ 0.3",
            "?x worksAt ?y => ?x 'lectured at' ?y @ 0.9",
        )
        answers = processor.query(parse_query("AlbertEinstein worksAt ?x"))
        princeton = [
            a for a in answers if a.value("x") == Resource("PrincetonUniversity")
        ]
        assert princeton
        # 'lectured at' path (0.9) should dominate the affiliation path for
        # Princeton (affiliation gives IAS, not Princeton).
        assert princeton[0].score > 0.3

    def test_pattern_merge_vs_rewriting_same_answers(self, frozen_small_store):
        rule = "?x worksAt ?y => ?x affiliation ?y @ 0.5"
        merged = self._processor_with_rules(
            frozen_small_store, rule, pattern_level_merge=True
        )
        rewritten = self._processor_with_rules(
            frozen_small_store, rule, pattern_level_merge=False
        )
        query = parse_query("AlbertEinstein worksAt ?x")
        a = [(x.binding, round(x.score, 9)) for x in merged.query(query)]
        b = [(x.binding, round(x.score, 9)) for x in rewritten.query(query)]
        assert a == b


class TestStats:
    def test_stats_populated(self, processor):
        answers = processor.query(parse_query("?x bornIn ?y"))
        assert answers.stats.sorted_accesses > 0
        assert answers.stats.cursors_opened > 0
        assert answers.stats.rewritings_processed == 1
        assert answers.stats.elapsed_seconds > 0

    def test_with_config_clone(self, processor):
        clone = processor.with_config(use_relaxation=False)
        assert clone.store is processor.store
        assert not clone.config.use_relaxation
        assert processor.config.use_relaxation
