"""Unit tests for posting and materialised-join cursors."""

import pytest

from repro.core.results import QueryStats
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore
from repro.topk.cursors import MaterializedJoinCursor, PostingCursor

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def scorer(frozen_small_store):
    return PatternScorer(frozen_small_store)


class TestPostingCursor:
    def test_descending_scores(self, frozen_small_store, scorer):
        pattern = TriplePattern(X, Variable("p"), Y)
        cursor = PostingCursor(frozen_small_store, scorer, pattern)
        scores = []
        while (item := cursor.pop()) is not None:
            scores.append(item.score)
        assert scores == sorted(scores, reverse=True)
        assert len(scores) == len(frozen_small_store)

    def test_peek_matches_next_pop(self, frozen_small_store, scorer):
        pattern = TriplePattern(X, Resource("bornIn"), Y)
        cursor = PostingCursor(frozen_small_store, scorer, pattern)
        peeked = cursor.peek()
        assert cursor.pop().score == pytest.approx(peeked)

    def test_exhaustion(self, frozen_small_store, scorer):
        pattern = TriplePattern(X, Resource("bornIn"), Y)
        cursor = PostingCursor(frozen_small_store, scorer, pattern)
        while cursor.pop() is not None:
            pass
        assert cursor.peek() is None
        assert cursor.pop() is None

    def test_multiplier_applied(self, frozen_small_store, scorer):
        pattern = TriplePattern(X, Resource("bornIn"), Y)
        plain = PostingCursor(frozen_small_store, scorer, pattern)
        halved = PostingCursor(
            frozen_small_store, scorer, pattern, multiplier=0.5
        )
        assert halved.peek() == pytest.approx(plain.peek() * 0.5)

    def test_repeated_variable_filtered(self, scorer):
        store = TripleStore()
        knows = Resource("knows")
        a = Resource("A")
        store.add(Triple(a, knows, a))
        store.add(Triple(a, knows, Resource("B")))
        store.freeze()
        cursor = PostingCursor(store, PatternScorer(store), TriplePattern(X, knows, X))
        items = []
        while (item := cursor.pop()) is not None:
            items.append(item)
        assert len(items) == 1
        assert dict(items[0].binding)[X] == a

    def test_binding_contents(self, frozen_small_store, scorer):
        pattern = TriplePattern(Resource("AlbertEinstein"), Resource("bornIn"), Y)
        cursor = PostingCursor(frozen_small_store, scorer, pattern)
        item = cursor.pop()
        assert dict(item.binding) == {Y: Resource("Ulm")}
        assert item.info.records[0].triple.o == Resource("Ulm")

    def test_stats_counted(self, frozen_small_store, scorer):
        stats = QueryStats()
        pattern = TriplePattern(X, Resource("bornIn"), Y)
        cursor = PostingCursor(frozen_small_store, scorer, pattern, stats=stats)
        cursor.pop()
        cursor.pop()
        assert stats.sorted_accesses == 2
        assert stats.cursors_opened == 1

    def test_lazy_open(self, frozen_small_store, scorer):
        stats = QueryStats()
        PostingCursor(
            frozen_small_store,
            scorer,
            TriplePattern(X, Resource("bornIn"), Y),
            stats=stats,
        )
        assert stats.cursors_opened == 0  # construction does not open

    def test_ensure_exact_true(self, frozen_small_store, scorer):
        cursor = PostingCursor(
            frozen_small_store, scorer, TriplePattern(X, Resource("bornIn"), Y)
        )
        assert cursor.ensure_exact()


class TestMaterializedJoinCursor:
    def _cursor(self, store, scorer, multiplier=0.8, stats=None):
        """The Figure 4 rule 3 sub-join: affiliation ∘ 'housed in'."""
        patterns = (
            TriplePattern(Resource("AlbertEinstein"), Resource("affiliation"), Z),
            TriplePattern(Z, TextToken("housed in"), Y),
        )
        return MaterializedJoinCursor(
            store, scorer, patterns, (Y,), multiplier=multiplier, stats=stats
        )

    def _paper_store(self):
        store = TripleStore()
        ae = Resource("AlbertEinstein")
        store.add(Triple(ae, Resource("affiliation"), Resource("IAS")))
        store.add(
            Triple(
                Resource("IAS"),
                TextToken("housed in"),
                Resource("PrincetonUniversity"),
            )
        )
        return store.freeze()

    def test_lazy_until_pop(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        cursor = self._cursor(store, scorer)
        assert not cursor.is_materialized
        assert cursor.peek() is not None  # optimistic bound, still lazy
        assert not cursor.is_materialized
        cursor.pop()
        assert cursor.is_materialized

    def test_peek_is_upper_bound(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        cursor = self._cursor(store, scorer)
        bound = cursor.peek()
        item = cursor.pop()
        assert item.score <= bound + 1e-12

    def test_projection_onto_interface(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        item = self._cursor(store, scorer).pop()
        assert set(dict(item.binding)) == {Y}
        assert dict(item.binding)[Y] == Resource("PrincetonUniversity")

    def test_multiplier_and_score_product(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        item = self._cursor(store, scorer, multiplier=0.8).pop()
        # Both sub-patterns have exactly one match: scores near 1.
        assert 0.5 < item.score <= 0.8

    def test_records_for_explanation(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        item = self._cursor(store, scorer).pop()
        assert len(item.info.records) == 2

    def test_ensure_exact_materializes(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        cursor = self._cursor(store, scorer)
        assert not cursor.ensure_exact()  # had to refine
        assert cursor.is_materialized
        assert cursor.ensure_exact()

    def test_empty_join(self):
        store = self._paper_store()
        scorer = PatternScorer(store)
        patterns = (
            TriplePattern(Resource("Nobody"), Resource("affiliation"), Z),
            TriplePattern(Z, TextToken("housed in"), Y),
        )
        cursor = MaterializedJoinCursor(store, scorer, patterns, (Y,))
        assert cursor.pop() is None

    def test_dedup_keeps_best_per_interface_binding(self):
        store = TripleStore()
        ae = Resource("AlbertEinstein")
        # Two institutes, both housed in Princeton → one projected binding.
        for name, count in (("IAS", 3), ("OtherInst", 1)):
            store.add(Triple(ae, Resource("affiliation"), Resource(name)))
            store.add(
                Triple(
                    Resource(name),
                    TextToken("housed in"),
                    Resource("PrincetonUniversity"),
                ),
                count=count,
            )
        store.freeze()
        scorer = PatternScorer(store)
        cursor = self._cursor(store, scorer)
        items = []
        while (item := cursor.pop()) is not None:
            items.append(item)
        assert len(items) == 1  # deduplicated on ?y
