"""Id-space execution must be indistinguishable from term-space semantics.

The equivalence harness of the id-space refactor: for the paper KG and for
generated worlds, every query must produce *identical* answer sets — same
projection bindings, same scores, same derivation provenance (triples, rules,
token expansions), same ``num_derivations`` — across

* execution cores:   idspace vs termspace,
* storage backends:  columnar vs dict,
* termination:       adaptive vs ``exhaustive=True``.

Plus unit coverage of the id-space building blocks (slot tables, pattern
plans, posting cursors).
"""

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.parser import parse_query
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.kg.paper_example import paper_engine
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore
from repro.topk.idspace import (
    UNBOUND,
    IdExecutionContext,
    IdPostingCursor,
    PatternPlan,
    SlotTable,
)

X, Y = Variable("x"), Variable("y")


def fingerprint(answers):
    """All observable facets of an answer set."""
    return [
        (
            answer.binding,
            answer.score,
            answer.num_derivations,
            tuple(record.triple.n3() for record in answer.derivation.triples_used()),
            tuple(rule.n3() for rule in answer.derivation.rules_used()),
            tuple(
                (tm.token.n3(), tm.similarity)
                for tm in answer.derivation.token_matches_used()
            ),
        )
        for answer in answers
    ]


def assert_equivalent(engine, queries, ks=(1, 3, 10)):
    """Drive all four (execution × exhaustive) variants over both backends."""
    termspace = engine.variant(execution="termspace")
    for query in queries:
        for k in ks:
            for exhaustive in (False, True):
                reference = fingerprint(
                    termspace.variant(exhaustive=exhaustive).ask(query, k=k)
                )
                observed = fingerprint(
                    engine.variant(exhaustive=exhaustive).ask(query, k=k)
                )
                assert observed == reference, (query, k, exhaustive)


# -- unit coverage ------------------------------------------------------------


class TestSlotTable:
    def test_slots_assigned_densely(self):
        table = SlotTable()
        assert table.slot(X) == 0
        assert table.slot(Y) == 1
        assert table.slot(X) == 0
        assert table.width == 2
        assert table.variable(1) == Y

    def test_freeze_rejects_new_variables(self):
        table = SlotTable()
        table.slot(X)
        table.freeze()
        assert table.slot(X) == 0  # known stays resolvable
        with pytest.raises(KeyError):
            table.slot(Variable("fresh"))


class TestPatternPlan:
    def _store(self):
        store = TripleStore()
        ae = Resource("AlbertEinstein")
        store.add(Triple(ae, Resource("knows"), ae))
        store.add(Triple(ae, Resource("knows"), Resource("MarieCurie")))
        return store.freeze()

    def test_constants_and_variables_compiled(self):
        store = self._store()
        table = SlotTable()
        plan = PatternPlan(TriplePattern(Resource("AlbertEinstein"), Resource("knows"), X), store, table)
        assert plan.const_ids[0] == store.dictionary.id_of(Resource("AlbertEinstein"))
        assert plan.const_ids[2] is None
        assert plan.var_positions == ((2, table.slot(X)),)
        assert not plan.missing_constant

    def test_unknown_constant_flagged(self):
        store = self._store()
        plan = PatternPlan(
            TriplePattern(Resource("Nobody"), Resource("knows"), X), store, SlotTable()
        )
        assert plan.missing_constant

    def test_repeated_variable_consistency(self):
        store = self._store()
        table = SlotTable()
        plan = PatternPlan(TriplePattern(X, Resource("knows"), X), store, table)
        assert plan.has_repeated_variable
        ae = store.dictionary.id_of(Resource("AlbertEinstein"))
        mc = store.dictionary.id_of(Resource("MarieCurie"))
        knows = store.dictionary.id_of(Resource("knows"))
        assert plan.consistent((ae, knows, ae))
        assert not plan.consistent((ae, knows, mc))

    def test_bind_into_conflict(self):
        store = self._store()
        table = SlotTable()
        plan = PatternPlan(TriplePattern(X, Resource("knows"), Y), store, table)
        ae = store.dictionary.id_of(Resource("AlbertEinstein"))
        mc = store.dictionary.id_of(Resource("MarieCurie"))
        knows = store.dictionary.id_of(Resource("knows"))
        out = [UNBOUND, UNBOUND]
        assert plan.bind_into((ae, knows, mc), out)
        assert out == [ae, mc]
        # Pre-bound slot with a different id must reject.
        out = [ae, mc]
        assert not plan.bind_into((mc, knows, ae), out)


class TestIdPostingCursor:
    def test_descending_scores_and_bindings(self):
        store = TripleStore()
        ae = Resource("AlbertEinstein")
        aff = Resource("affiliation")
        store.add(Triple(ae, aff, Resource("IAS")), count=3)
        store.add(Triple(ae, aff, Resource("ETH")), count=1)
        store.freeze()
        scorer = PatternScorer(store)
        ctx = IdExecutionContext(store, scorer, None)
        cursor = IdPostingCursor(ctx, TriplePattern(ae, aff, X))
        scores = []
        items = []
        while (peek := cursor.peek()) is not None:
            item = cursor.pop()
            assert item.score == peek
            scores.append(item.score)
            items.append(item)
        assert len(items) == 2
        assert scores == sorted(scores, reverse=True)
        decoded = [store.dictionary.decode(i.binding[0]) for i in items]
        assert decoded == [Resource("IAS"), Resource("ETH")]

    def test_repeated_variable_filtered(self):
        store = TripleStore()
        ae = Resource("AlbertEinstein")
        store.add(Triple(ae, Resource("knows"), ae))
        store.add(Triple(ae, Resource("knows"), Resource("MarieCurie")))
        store.freeze()
        ctx = IdExecutionContext(store, PatternScorer(store), None)
        cursor = IdPostingCursor(ctx, TriplePattern(X, Resource("knows"), X))
        item = cursor.pop()
        assert item is not None
        assert store.dictionary.decode(item.binding[0]) == ae
        assert cursor.pop() is None


# -- end-to-end equivalence ------------------------------------------------------


PAPER_QUERIES = [
    "AlbertEinstein affiliation ?x",
    "?x affiliation ETH",
    "?x 'works at' ?y",
    "AlbertEinstein 'won prize for' ?x",
    "?p bornIn ?c . ?c locatedIn Germany",
    "?p affiliation ?u . ?p 'won nobel prize' ?z",
    "MaxPlanck hasAdvisor ?x",
]


class TestPaperKgEquivalence:
    def test_paper_queries_identical_across_everything(self):
        for backend in ("columnar", "dict", "sharded"):
            engine = paper_engine(storage_backend=backend)
            assert engine.store.backend_name == backend
            assert_equivalent(engine, [parse_query(q) for q in PAPER_QUERIES])


class TestGeneratedWorldEquivalence:
    def test_tiny_harness_queries_identical(self, tiny_harness):
        queries = [
            bq.parse() for bq in tiny_harness.benchmark.queries[:10]
        ]
        assert_equivalent(tiny_harness.engine, queries, ks=(1, 5))

    def test_join_queries_identical(self, tiny_harness):
        world = tiny_harness.world
        queries = [
            parse_query("?p 'works at' ?u . ?u locatedIn ?c"),
            parse_query("?p affiliation ?u . ?u locatedIn ?c"),
            parse_query(f"?x affiliation {world.universities[0].id}"),
            parse_query("?a 'works at' ?u . ?b 'works at' ?u"),
        ]
        assert_equivalent(tiny_harness.engine, queries, ks=(1, 10))

    def test_dict_backend_engine_identical(self, tiny_harness):
        config = EngineConfig(storage_backend="dict")
        engine = TriniT(tiny_harness.xkg_store, config=config)
        assert engine.store.backend_name == "dict"
        queries = [bq.parse() for bq in tiny_harness.benchmark.queries[:6]]
        assert_equivalent(engine, queries, ks=(3,))

    def test_sharded_backend_engine_identical(self, tiny_harness):
        """The partitioned store runs the unchanged execution core."""
        config = EngineConfig(storage_backend="sharded")
        engine = TriniT(tiny_harness.xkg_store, config=config)
        assert engine.store.backend_name == "sharded"
        assert engine.store.backend.num_segments >= 4
        queries = [bq.parse() for bq in tiny_harness.benchmark.queries[:6]]
        assert_equivalent(engine, queries, ks=(3,))

    def test_snapshot_loaded_store_engine_identical(self, tiny_harness, tmp_path):
        """A mmap-loaded snapshot is observationally the original store."""
        from repro.storage.snapshot import load_snapshot, save_snapshot

        path = tmp_path / "tiny.snap"
        save_snapshot(tiny_harness.xkg_store, path)
        engine = TriniT(load_snapshot(path))
        queries = [bq.parse() for bq in tiny_harness.benchmark.queries[:6]]
        assert_equivalent(engine, queries, ks=(3,))


class TestSubJoinInvariant:
    def test_unbindable_interface_variable_rejected(self):
        from repro.errors import TopKError
        from repro.topk.idspace import IdSubJoinCursor

        store = TripleStore()
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        store.freeze()
        ctx = IdExecutionContext(store, PatternScorer(store), None)
        with pytest.raises(TopKError):
            IdSubJoinCursor(
                ctx,
                (TriplePattern(X, Resource("p"), Resource("B")),),
                (Variable("y"),),  # not bound by any replacement pattern
            )
