"""Equivalence of adaptive top-k processing with exhaustive evaluation.

The whole point of threshold termination and lazy relaxation is to skip
*work*, never *answers*: for every query, the adaptive processor's top-k must
equal the first k answers of the exhaustive evaluator (same bindings, same
scores).  These tests drive both over randomised stores and rule sets.
"""

import random

import pytest

from repro.core.parser import parse_query, parse_rule
from repro.core.query import Query
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.relax.rules import RuleSet
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore
from repro.topk.exhaustive import naive_join
from repro.topk.processor import ProcessorConfig, TopKProcessor


def random_store(seed: int, n_entities: int = 12, n_triples: int
= 80) -> TripleStore:
    rng = random.Random(seed)
    store = TripleStore()
    entities = [Resource(f"E{i}") for i in range(n_entities)]
    predicates = [Resource(f"p{i}") for i in range(4)] + [
        TextToken("works at"),
        TextToken("lives in"),
    ]
    for _ in range(n_triples):
        store.add(
            Triple(
                rng.choice(entities),
                rng.choice(predicates),
                rng.choice(entities),
            ),
            confidence=rng.choice([0.5, 0.8, 1.0]),
            count=rng.randint(1, 4),
        )
    return store.freeze()


def random_rules(seed: int) -> RuleSet:
    rng = random.Random(seed)
    rules = RuleSet()
    predicates = [f"p{i}" for i in range(4)] + ["'works at'", "'lives in'"]
    for _ in range(6):
        source, target = rng.sample(predicates, 2)
        weight = round(rng.uniform(0.3, 0.95), 2)
        if rng.random() < 0.3:
            rules.add(parse_rule(f"?x {source} ?y => ?y {target} ?x @ {weight}"))
        else:
            rules.add(parse_rule(f"?x {source} ?y => ?x {target} ?y @ {weight}"))
    # One chain-expansion rule.
    rules.add(parse_rule("?x p0 ?y => ?x p1 ?z ; ?z p2 ?y @ 0.6"))
    return rules


QUERIES = [
    "?x p0 ?y",
    "E1 p0 ?y",
    "?x p1 E2",
    "?x 'works at' ?y",
    "?x p0 ?y ; ?y p1 ?z",
    "SELECT ?x WHERE ?x p0 ?y ; ?y p2 E3",
    "?x p0 E1 ; ?x p1 ?z",
]


def assert_valid_topk(fast_answers, full_answers, k):
    """``fast_answers`` must be *a* correct top-k of ``full_answers``.

    Answers with tied scores are interchangeable at the k-boundary, so the
    check is: identical descending score profile, and every fast answer
    (binding + score) present in the exhaustive full list.
    """
    full = [(a.binding, round(a.score, 9)) for a in full_answers]
    fast = [(a.binding, round(a.score, 9)) for a in fast_answers]
    assert len(fast) == min(k, len(full))
    assert [s for _b, s in fast] == [s for _b, s in full[: len(fast)]]
    full_set = set(full)
    for entry in fast:
        assert entry in full_set


class TestAdaptiveMatchesExhaustive:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_same_topk(self, seed, query_text):
        store = random_store(seed)
        rules = random_rules(seed + 100)
        query = parse_query(query_text)
        k = 5
        adaptive = TopKProcessor(store, rules=rules)
        exhaustive = TopKProcessor(
            store, rules=rules, config=ProcessorConfig(exhaustive=True)
        )
        fast = adaptive.query(query, k)
        slow_full = exhaustive.query(query, 10_000)
        assert_valid_topk(fast.answers, slow_full.answers, k)

    @pytest.mark.parametrize("seed", range(4))
    def test_adaptive_does_less_work(self, seed):
        store = random_store(seed, n_entities=15, n_triples=150)
        rules = random_rules(seed)
        query = parse_query("?x p0 ?y")
        adaptive = TopKProcessor(store, rules=rules)
        exhaustive = TopKProcessor(
            store, rules=rules, config=ProcessorConfig(exhaustive=True)
        )
        fast = adaptive.query(query, 1)
        slow = exhaustive.query(query, 1)
        assert fast.stats.sorted_accesses <= slow.stats.sorted_accesses


class TestAgainstNaiveJoin:
    """With relaxation and tokens disabled, the processor must agree with
    the independent backtracking evaluator on every answer and score."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "query_text",
        ["?x p0 ?y", "?x p0 ?y ; ?y p1 ?z", "E1 p2 ?y", "?x p3 E2 ; ?x p0 ?y"],
    )
    def test_exact_join_equivalence(self, seed, query_text):
        store = random_store(seed * 7 + 1)
        query = parse_query(query_text)
        processor = TopKProcessor(
            store,
            config=ProcessorConfig(
                use_relaxation=False,
                use_token_expansion=False,
                unknown_resource_fallback=False,
            ),
        )
        scorer = processor.scorer
        expected = naive_join(store, scorer, query)  # all answers
        got = processor.query(query, 10)
        got_signature = [(a.binding, round(a.score, 9)) for a in got]
        expected_signature = [(b, round(s, 9)) for b, s in expected]
        # Same descending score profile; every returned answer correct.
        assert [s for _b, s in got_signature] == [
            s for _b, s in expected_signature[: len(got_signature)]
        ]
        expected_set = set(expected_signature)
        for entry in got_signature:
            assert entry in expected_set
        assert len(got_signature) == min(10, len(expected_signature))

    def test_repeated_variable_query(self):
        store = TripleStore()
        knows = Resource("knows")
        store.add(Triple(Resource("A"), knows, Resource("A")))
        store.add(Triple(Resource("A"), knows, Resource("B")))
        store.add(Triple(Resource("B"), knows, Resource("B")))
        store.freeze()
        processor = TopKProcessor(store)
        answers = processor.query(
            Query([TriplePattern(Variable("x"), knows, Variable("x"))])
        )
        found = {a.value("x") for a in answers}
        assert found == {Resource("A"), Resource("B")}
