"""Unit tests of the block execution kernels (:mod:`repro.topk.kernels`).

The kernels are the vectorised inner loops of the id-space hot path; every
one of them has a scalar reference it must match *bit for bit* — these
tests pin each kernel against its reference directly, across the branch
combinations (zero mass, zero collection mass, background-off ``lam=0``)
that the hoisted block variants resolve once per block instead of once per
item.  The :class:`~repro.topk.kernels.HotBlockCache` tests pin the LRU
contract the sharded merge relies on (bounded, thread-safe counters,
clear-on-swap).
"""

import math

import pytest

from repro.topk import kernels
from repro.topk.kernels import (
    HotBlockCache,
    bind_block,
    filter_consistent_block,
    gather_weights,
    prepare_head_block,
    score_block,
)

WEIGHTS = [0.05, 0.21, 0.5, 0.7777, 1.0, 0.333333, 0.9, 0.12345]


def scalar_score(weight, lam, mass, cmass, multiplier):
    # The per-item reference: IdPostingCursor._score_weight, verbatim.
    foreground = weight / mass if mass > 0 else 0.0
    if lam == 0.0:
        return multiplier * foreground
    background = weight / cmass if cmass > 0 else 0.0
    return multiplier * ((1.0 - lam) * foreground + lam * background)


@pytest.mark.parametrize("lam", [0.0, 0.1, 0.5, 0.999])
@pytest.mark.parametrize("mass", [0.0, 0.3, 7.123])
@pytest.mark.parametrize("cmass", [0.0, 11.7])
@pytest.mark.parametrize("multiplier", [1.0, 0.25])
def test_score_block_bit_identical_to_scalar(lam, mass, cmass, multiplier):
    block = score_block(WEIGHTS, lam, mass, cmass, multiplier)
    reference = [
        scalar_score(w, lam, mass, cmass, multiplier) for w in WEIGHTS
    ]
    assert len(block) == len(reference)
    for got, want in zip(block, reference):
        # Bit-identity, not approximation: the block path must emit the
        # same float the per-item path does.
        assert math.copysign(1.0, got) == math.copysign(1.0, want)
        assert got == want
        assert got.hex() == want.hex()


def test_score_block_empty():
    assert list(score_block([], 0.3, 1.0, 2.0, 1.0)) == []


def test_gather_weights_routes_through_getitem():
    class Column:
        def __getitem__(self, tid):
            return tid * 0.5

    assert gather_weights(Column(), [4, 0, 2]) == [2.0, 0.0, 1.0]


def test_prepare_head_block_matches_tuple_reference():
    postings = list(range(10))
    globals_ = [i * 3 for i in range(10)]
    weights = {i * 3: 0.1 + i / 7 for i in range(10)}

    class Weights:
        def __getitem__(self, gid):
            return weights[gid]

    negw, gids = prepare_head_block(postings, globals_, Weights(), 2, 7)
    reference = [(-weights[globals_[p]], globals_[p]) for p in postings[2:7]]
    assert list(zip(negw, gids)) == reference
    # Exact negation: the merge keys must equal the old tuple keys bit for
    # bit (float negation flips the sign bit only).
    for key, (want, _) in zip(negw, reference):
        assert key.hex() == want.hex()


def test_filter_consistent_block_single_pair():
    spo = {1: (5, 9, 5), 2: (5, 9, 6), 3: (7, 9, 7), 4: (0, 1, 2)}
    out = filter_consistent_block([1, 2, 3, 4], spo.__getitem__, [(0, 2)])
    assert out == [1, 3]


def test_filter_consistent_block_multi_pair():
    spo = {1: (5, 5, 5), 2: (5, 5, 6), 3: (6, 6, 6)}
    out = filter_consistent_block(
        [1, 2, 3], spo.__getitem__, [(0, 1), (1, 2)]
    )
    assert out == [1, 3]


def test_bind_block_fills_template_slots():
    spo = {10: (3, 4, 5), 11: (6, 4, 7)}
    rows = bind_block(
        [10, 11],
        spo.__getitem__,
        [(0, 1), (2, 0)],  # position 0 -> slot 1, position 2 -> slot 0
        [-1, -1, -1],
    )
    assert rows == [(5, 3, -1), (7, 6, -1)]


# -- HotBlockCache ----------------------------------------------------------


def test_cache_round_trip_and_counters():
    cache = HotBlockCache(capacity=4)
    key = ("snap", 0, (False, True, False), (7,), 0, 8)
    assert cache.get(key) is None
    assert cache.misses == 1
    block = ((0.5,), (1,))
    cache.put(key, block)
    assert cache.get(key) is block
    assert cache.hits == 1
    assert len(cache) == 1


def test_cache_lru_eviction_order():
    cache = HotBlockCache(capacity=2)
    cache.put("a", (1,))
    cache.put("b", (2,))
    assert cache.get("a") == (1,)  # refresh "a": "b" is now LRU
    cache.put("c", (3,))
    assert cache.get("b") is None
    assert cache.get("a") == (1,)
    assert cache.get("c") == (3,)
    assert len(cache) == 2


def test_cache_clear_drops_entries_keeps_counters():
    cache = HotBlockCache(capacity=2)
    cache.put("a", (1,))
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.hits == 1  # lifetime counters survive a clear
    assert cache.misses == 1


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        HotBlockCache(capacity=0)


def test_default_score_block_is_sane():
    assert kernels.DEFAULT_SCORE_BLOCK >= 1
