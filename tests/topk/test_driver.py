"""The resumable execution driver: prefix stability and resumption.

The driver's contract is *split invariance*: however a top-k computation is
chopped into ``advance`` calls, the settled prefix is byte-identical —
bindings, scores, order, derivations — to the eager ``query()`` answer list
(which is itself the driver drained in one go).  The property test hammers
this across random worlds, rules, backends, execution cores and split
patterns, including the score-tie-at-the-boundary cases that make naive
pagination diverge.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_query, parse_rule
from repro.core.terms import Resource, TextToken
from repro.core.triples import Provenance, Triple
from repro.errors import TopKError
from repro.relax.rules import RuleSet
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor


def fingerprint(answers):
    return [
        (
            answer.binding,
            answer.score,
            answer.num_derivations,
            tuple(record.triple.n3() for record in answer.derivation.triples_used()),
            tuple(rule.n3() for rule in answer.derivation.rules_used()),
        )
        for answer in answers
    ]


def stream_in_batches(processor, query, batch_sizes):
    """Advance one driver through ``batch_sizes``, collecting each window."""
    driver = processor.driver(query)
    collected = []
    for n in batch_sizes:
        target = len(collected) + n
        driver.advance(target)
        collected.extend(driver.ranked(target)[len(collected):target])
    return driver, collected


class TestDriverBasics:
    def test_eager_query_is_driver_drain(self, frozen_small_store):
        processor = TopKProcessor(frozen_small_store)
        query = parse_query("?x 'lectured at' ?y")
        eager = processor.query(query, 10)
        driver = processor.driver(query)
        drained = driver.advance(10).ranked(10)
        assert fingerprint(drained) == fingerprint(eager.answers)

    def test_advance_rejects_bad_k(self, frozen_small_store):
        processor = TopKProcessor(frozen_small_store)
        driver = processor.driver(parse_query("?x bornIn ?y"))
        with pytest.raises(TopKError):
            driver.advance(0)

    def test_advance_is_idempotent_at_same_k(self, frozen_small_store):
        processor = TopKProcessor(frozen_small_store)
        driver = processor.driver(parse_query("?x affiliation ?y"))
        first = fingerprint(driver.advance(2).ranked(2))
        accesses = driver.stats.sorted_accesses
        again = fingerprint(driver.advance(2).ranked(2))
        assert again == first
        assert driver.stats.sorted_accesses == accesses  # no extra work
        assert driver.stats.resumes == 1

    def test_exhaustion_is_reported(self, frozen_small_store):
        processor = TopKProcessor(frozen_small_store)
        driver = processor.driver(parse_query("AlbertEinstein bornIn ?x"))
        driver.advance(50)
        assert len(driver.ranked(50)) == 1
        assert driver.is_exhausted

    def test_resume_grows_the_prefix(self, frozen_small_store):
        processor = TopKProcessor(frozen_small_store)
        query = parse_query("?x 'lectured at' ?y")
        eager = processor.query(query, 10)
        _driver, collected = stream_in_batches(processor, query, [1, 1, 8])
        assert fingerprint(collected) == fingerprint(eager.answers)

    def test_exhaustive_mode_streams_identically(self, frozen_small_store):
        processor = TopKProcessor(
            frozen_small_store, config=ProcessorConfig(exhaustive=True)
        )
        query = parse_query("?x 'lectured at' ?y")
        eager = processor.query(query, 10)
        _driver, collected = stream_in_batches(processor, query, [1, 9])
        assert fingerprint(collected) == fingerprint(eager.answers)


class TestTiedBoundaries:
    """Score ties straddling a batch boundary must not reorder the prefix."""

    @staticmethod
    def _tied_store(backend):
        store = TripleStore(backend=backend)
        p = Resource("p")
        # Ten subjects with identical weights -> ten answers at one score.
        for i in range(10):
            store.add(Triple(Resource(f"E{i}"), p, Resource("T")))
        # Two heavier, also mutually tied.
        for name in ("A", "B"):
            store.add(Triple(Resource(name), p, Resource("T")), count=3)
        return store.freeze()

    @pytest.mark.parametrize("backend", ["columnar", "dict", "sharded"])
    @pytest.mark.parametrize("execution", ["idspace", "termspace"])
    def test_splits_through_tie_runs(self, backend, execution):
        store = self._tied_store(backend)
        processor = TopKProcessor(
            store, config=ProcessorConfig(execution=execution)
        )
        query = parse_query("?x p T")
        eager = processor.query(query, 12)
        for batches in ([1, 11], [3, 9], [5, 5, 2], [2, 2, 2, 2, 2, 2]):
            _driver, collected = stream_in_batches(processor, query, batches)
            assert fingerprint(collected) == fingerprint(eager.answers), batches


# -- property: split invariance across the full configuration matrix --------

resources = st.integers(0, 9).map(lambda i: Resource(f"E{i}"))
predicates = st.one_of(
    st.integers(0, 3).map(lambda i: Resource(f"p{i}")),
    st.just(TextToken("works at")),
    st.just(TextToken("lives in")),
)
observations = st.tuples(
    st.builds(Triple, resources, predicates, resources),
    st.sampled_from([0.5, 0.8, 1.0]),
    st.integers(min_value=1, max_value=4),
)
rule_texts = st.lists(
    st.tuples(
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'"]),
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'", "'lives in'"]),
        st.sampled_from([0.4, 0.6, 0.9]),
        st.booleans(),
    ).filter(lambda r: r[0] != r[1]),
    max_size=3,
)
queries = st.sampled_from(
    [
        "?x p0 ?y",
        "E1 p1 ?y",
        "?x 'works at' ?y",
        "?x p0 ?y ; ?y p1 ?z",
        "?x 'works at' ?u ; ?u p2 ?c",
    ]
)
splits = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)


def build(entries, rule_specs, backend):
    store = TripleStore(backend=backend)
    provenance = Provenance("openie", "doc-prop", "", "reverb")
    for triple, confidence, count in entries:
        store.add(triple, provenance, confidence=confidence, count=count)
    store.freeze()
    rules = RuleSet()
    for source, target, weight, inverted in rule_specs:
        shape = "?y {t} ?x" if inverted else "?x {t} ?y"
        rules.add(
            parse_rule(f"?x {source} ?y => {shape.format(t=target)} @ {weight}")
        )
    return store, rules


@settings(max_examples=30, deadline=None)
@given(
    st.lists(observations, min_size=1, max_size=30),
    rule_texts,
    queries,
    splits,
    st.sampled_from(["columnar", "dict", "sharded"]),
    st.sampled_from(["idspace", "termspace"]),
)
def test_stream_batches_equal_eager_topk(
    entries, rule_specs, query_text, batch_sizes, backend, execution
):
    store, rules = build(entries, rule_specs, backend)
    processor = TopKProcessor(
        store, rules=rules, config=ProcessorConfig(execution=execution)
    )
    query = parse_query(query_text)
    total = sum(batch_sizes)
    eager = processor.query(query, total)
    _driver, collected = stream_in_batches(processor, query, batch_sizes)
    assert fingerprint(collected) == fingerprint(eager.answers)
