"""Unit tests for the incremental merge of pattern + relaxation cursors."""

import pytest

from repro.core.results import PatternMatchInfo, QueryStats, binding_key
from repro.core.terms import Resource, Variable
from repro.core.triples import TriplePattern
from repro.topk.cursors import ScoredMatch
from repro.topk.incremental_merge import IncrementalMergeCursor

X = Variable("x")
PATTERN = TriplePattern(X, Resource("p"), Resource("o"))


class FakeCursor:
    """Scripted cursor for merge testing."""

    def __init__(self, items, optimistic_bound=None):
        # items: list of (binding_name, score)
        self._items = [
            ScoredMatch(
                binding_key({X: Resource(name)}),
                score,
                PatternMatchInfo(PATTERN, (), score),
            )
            for name, score in items
        ]
        self._pos = 0
        self._bound = optimistic_bound
        self.materialize_calls = 0

    def peek(self):
        if self._bound is not None:
            return self._bound
        if self._pos < len(self._items):
            return self._items[self._pos].score
        return None

    def ensure_exact(self):
        if self._bound is not None:
            self._bound = None
            self.materialize_calls += 1
            return False
        return True

    def pop(self):
        if self._bound is not None:
            self.ensure_exact()
        if self._pos >= len(self._items):
            return None
        item = self._items[self._pos]
        self._pos += 1
        return item


def drain(cursor):
    items = []
    while (item := cursor.pop()) is not None:
        items.append(item)
    return items


class TestMergeOrder:
    def test_globally_descending(self):
        merged = IncrementalMergeCursor(
            [
                FakeCursor([("a", 0.9), ("b", 0.3)]),
                FakeCursor([("c", 0.7), ("d", 0.5)]),
                FakeCursor([("e", 0.8)]),
            ]
        )
        scores = [item.score for item in drain(merged)]
        assert scores == sorted(scores, reverse=True)
        assert scores == [0.9, 0.8, 0.7, 0.5, 0.3]

    def test_dedup_keeps_first_and_best(self):
        merged = IncrementalMergeCursor(
            [
                FakeCursor([("a", 0.9)]),
                FakeCursor([("a", 0.6), ("b", 0.4)]),
            ]
        )
        items = drain(merged)
        assert [i.score for i in items] == [0.9, 0.4]

    def test_empty_cursors(self):
        merged = IncrementalMergeCursor([FakeCursor([]), FakeCursor([])])
        assert merged.peek() is None
        assert merged.pop() is None

    def test_single_cursor_passthrough(self):
        merged = IncrementalMergeCursor([FakeCursor([("a", 0.5), ("b", 0.2)])])
        assert [i.score for i in drain(merged)] == [0.5, 0.2]


class TestAdaptiveInvocation:
    def test_lazy_cursor_not_materialized_when_dominated(self):
        lazy = FakeCursor([("z", 0.05)], optimistic_bound=0.1)
        merged = IncrementalMergeCursor(
            [FakeCursor([("a", 0.9), ("b", 0.8)]), lazy]
        )
        merged.pop()  # 0.9
        merged.pop()  # 0.8
        assert lazy.materialize_calls == 0  # bound 0.1 never reached the top

    def test_lazy_cursor_materialized_when_needed(self):
        lazy = FakeCursor([("z", 0.55)], optimistic_bound=0.6)
        merged = IncrementalMergeCursor([FakeCursor([("a", 0.9)]), lazy])
        merged.pop()  # 0.9 from the eager cursor
        item = merged.pop()  # forces the lazy cursor open
        assert lazy.materialize_calls == 1
        assert item.score == pytest.approx(0.55)

    def test_optimistic_bound_does_not_break_order(self):
        # Lazy bound 0.7 but actual best item 0.2: the merge must still
        # emit the eager 0.5 item first.
        lazy = FakeCursor([("z", 0.2)], optimistic_bound=0.7)
        merged = IncrementalMergeCursor([FakeCursor([("a", 0.5)]), lazy])
        first = merged.pop()
        second = merged.pop()
        assert first.score == pytest.approx(0.5)
        assert second.score == pytest.approx(0.2)

    def test_stats_invocations(self):
        stats = QueryStats()
        lazy = FakeCursor([("z", 0.55)], optimistic_bound=0.6)
        merged = IncrementalMergeCursor(
            [FakeCursor([("a", 0.9)]), lazy], stats=stats
        )
        assert stats.relaxations_considered == 1
        drain(merged)
        assert stats.relaxations_invoked == 1

    def test_stats_not_invoked_when_dominated(self):
        stats = QueryStats()
        lazy = FakeCursor([("z", 0.05)], optimistic_bound=0.1)
        merged = IncrementalMergeCursor(
            [FakeCursor([("a", 0.9)]), lazy], stats=stats
        )
        merged.pop()
        assert stats.relaxations_invoked == 0


class TestPeek:
    def test_peek_upper_bounds_next(self):
        merged = IncrementalMergeCursor(
            [FakeCursor([("a", 0.4)]), FakeCursor([("b", 0.9)])]
        )
        assert merged.peek() == pytest.approx(0.9)
        item = merged.pop()
        assert item.score <= 0.9

    def test_peek_after_exhaustion(self):
        merged = IncrementalMergeCursor([FakeCursor([("a", 0.4)])])
        drain(merged)
        assert merged.peek() is None
