"""Unit tests for JSONL persistence."""

import json

import pytest

from repro.core.terms import Literal, Resource, TextToken
from repro.core.triples import Triple
from repro.errors import PersistenceError
from repro.storage.persistence import load_store, save_store
from repro.storage.store import TripleStore


class TestRoundtrip:
    def test_counts_and_confidence_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        written = save_store(small_store, path)
        assert written == len(small_store)
        loaded = load_store(path)
        assert len(loaded) == len(small_store)
        for record in small_store.records():
            reloaded = loaded.lookup(record.triple)
            assert reloaded is not None
            assert reloaded.count == record.count
            assert reloaded.confidence == pytest.approx(record.confidence)

    def test_provenances_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        loaded = load_store(path)
        original = small_store.lookup(
            Triple(
                Resource("AlbertEinstein"),
                TextToken("lectured at"),
                Resource("PrincetonUniversity"),
            )
        )
        reloaded = loaded.lookup(original.triple)
        assert reloaded.provenances == original.provenances

    def test_literal_types_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        loaded = load_store(path)
        record = loaded.lookup(
            Triple(
                Resource("AlbertEinstein"),
                Resource("bornOn"),
                Literal("1879-03-14"),
            )
        )
        # "1879-03-14" auto-types to a date on reload; both forms unify via
        # lexical equality of the literal.
        assert record is not None or loaded.lookup(
            Triple(
                Resource("AlbertEinstein"),
                Resource("bornOn"),
                Literal(__import__("datetime").date(1879, 3, 14)),
            )
        )

    def test_loaded_store_is_frozen_by_default(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        assert load_store(path).is_frozen
        assert not load_store(path, freeze=False).is_frozen

    def test_store_name_preserved(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        assert load_store(path).name == small_store.name


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_store(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_bad_json_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_bad_triple_line_reports_line_number(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        content = path.read_text().splitlines()
        content[1] = json.dumps({"s": ["r", "A"]})  # missing p/o
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(PersistenceError) as exc:
            load_store(path)
        assert ":2" in str(exc.value)

    def test_triple_count_mismatch(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one triple
        with pytest.raises(PersistenceError):
            load_store(path)
