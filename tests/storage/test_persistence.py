"""Unit tests for JSONL persistence."""

import json

import pytest

from repro.core.terms import Literal, Resource, TextToken
from repro.core.triples import Provenance, Triple
from repro.errors import PersistenceError
from repro.storage.persistence import load_store, save_store
from repro.storage.store import MAX_PROVENANCES, TripleStore
from repro.topk.processor import TopKProcessor


class TestRoundtrip:
    def test_counts_and_confidence_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        written = save_store(small_store, path)
        assert written == len(small_store)
        loaded = load_store(path)
        assert len(loaded) == len(small_store)
        for record in small_store.records():
            reloaded = loaded.lookup(record.triple)
            assert reloaded is not None
            assert reloaded.count == record.count
            assert reloaded.confidence == pytest.approx(record.confidence)

    def test_provenances_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        loaded = load_store(path)
        original = small_store.lookup(
            Triple(
                Resource("AlbertEinstein"),
                TextToken("lectured at"),
                Resource("PrincetonUniversity"),
            )
        )
        reloaded = loaded.lookup(original.triple)
        assert reloaded.provenances == original.provenances

    def test_literal_types_survive(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        loaded = load_store(path)
        record = loaded.lookup(
            Triple(
                Resource("AlbertEinstein"),
                Resource("bornOn"),
                Literal("1879-03-14"),
            )
        )
        # "1879-03-14" auto-types to a date on reload; both forms unify via
        # lexical equality of the literal.
        assert record is not None or loaded.lookup(
            Triple(
                Resource("AlbertEinstein"),
                Resource("bornOn"),
                Literal(__import__("datetime").date(1879, 3, 14)),
            )
        )

    def test_loaded_store_is_frozen_by_default(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        assert load_store(path).is_frozen
        assert not load_store(path, freeze=False).is_frozen

    def test_store_name_preserved(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        assert load_store(path).name == small_store.name


class TestExactFidelity:
    """Regression: save_store used to round confidences to 6 decimals, so a
    reloaded store ranked answers differently than the one it was saved
    from (conf 0.1234567891, count 3 → weight 0.3703703673 in-memory vs
    0.370371 after reload)."""

    def _exact_store(self):
        store = TripleStore("exact")
        aff = Resource("affiliation")
        store.add(
            Triple(Resource("A"), aff, Resource("U1")),
            confidence=0.1234567891,
            count=3,
        )
        # A competitor whose weight falls between the exact and the rounded
        # weight of the first triple: rounding used to flip their order.
        store.add(
            Triple(Resource("B"), aff, Resource("U2")),
            confidence=0.3703703690,
            count=1,
        )
        return store.freeze()

    def test_confidence_round_trips_bit_exact(self, tmp_path):
        store = self._exact_store()
        path = tmp_path / "exact.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        for record in store.records():
            reloaded = loaded.lookup(record.triple)
            assert reloaded.confidence == record.confidence  # ==, not approx

    def test_weights_identical_after_reload(self, tmp_path):
        store = self._exact_store()
        path = tmp_path / "exact.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        assert list(loaded.weights()) == list(store.weights())

    def test_topk_answer_order_survives_reload(self, tmp_path):
        from repro.core.parser import parse_query

        store = self._exact_store()
        path = tmp_path / "exact.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        query = parse_query("?x affiliation ?y")
        original = TopKProcessor(store).query(query, 5)
        reloaded = TopKProcessor(loaded).query(query, 5)
        assert [(a.binding, a.score) for a in reloaded] == [
            (a.binding, a.score) for a in original
        ]

    def test_small_store_weights_and_answers_survive(self, small_store, tmp_path):
        from repro.core.parser import parse_query

        store = small_store.freeze()
        path = tmp_path / "store.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        assert list(loaded.weights()) == list(store.weights())
        query = parse_query("AlbertEinstein ?p ?y")
        original = TopKProcessor(store).query(query, 10)
        reloaded = TopKProcessor(loaded).query(query, 10)
        assert [(a.binding, a.score) for a in reloaded] == [
            (a.binding, a.score) for a in original
        ]


class TestProvenanceCap:
    """Regression: load_store appended extra provenance samples directly,
    bypassing the MAX_PROVENANCES cap TripleStore.add enforces."""

    def test_hand_edited_file_cannot_exceed_cap(self, tmp_path):
        path = tmp_path / "inflated.jsonl"
        prov = [
            {"origin": "openie", "source": f"doc-{i}"}
            for i in range(MAX_PROVENANCES * 3)
        ]
        lines = [
            json.dumps({"format": "trinit-xkg-jsonl", "version": 1,
                        "name": "x", "triples": 1}),
            json.dumps({"s": ["r", "A"], "p": ["r", "p"], "o": ["r", "B"],
                        "count": 1, "conf": 0.5, "prov": prov}),
        ]
        path.write_text("\n".join(lines) + "\n")
        loaded = load_store(path)
        record = loaded.lookup(
            Triple(Resource("A"), Resource("p"), Resource("B"))
        )
        assert len(record.provenances) == MAX_PROVENANCES

    def test_duplicate_extra_provenances_deduped(self, tmp_path):
        path = tmp_path / "dupes.jsonl"
        prov = [{"origin": "openie", "source": "doc-1"}] * 4
        lines = [
            json.dumps({"format": "trinit-xkg-jsonl", "version": 1,
                        "name": "x", "triples": 1}),
            json.dumps({"s": ["r", "A"], "p": ["r", "p"], "o": ["r", "B"],
                        "count": 1, "conf": 0.5, "prov": prov}),
        ]
        path.write_text("\n".join(lines) + "\n")
        loaded = load_store(path)
        record = loaded.lookup(
            Triple(Resource("A"), Resource("p"), Resource("B"))
        )
        assert record.provenances == [Provenance("openie", "doc-1")]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_store(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_bad_json_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_bad_triple_line_reports_line_number(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        content = path.read_text().splitlines()
        content[1] = json.dumps({"s": ["r", "A"]})  # missing p/o
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(PersistenceError) as exc:
            load_store(path)
        assert ":2" in str(exc.value)

    def test_triple_count_mismatch(self, small_store, tmp_path):
        path = tmp_path / "store.jsonl"
        save_store(small_store, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one triple
        with pytest.raises(PersistenceError):
            load_store(path)
