"""The mutable delta segment: the live write path over a frozen store.

Two layers of contract.  The :class:`DeltaSegment` unit contract: dense id
assignment above the frozen base, immutable merge-ready posting snapshots
(a captured part never changes under concurrent growth), version-keyed
cache invalidation.  The store-level byte-identity contract: a frozen
store that absorbed live additions answers every posting lookup in
*exactly* the order a store freshly built from the union would — across
dict, columnar and sharded backends — because delta ids continue the
frozen id space densely and every merge is keyed by ``(-weight, id)``.
"""

import pytest

from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.errors import StorageError
from repro.storage.delta import DeltaSegment
from repro.storage.index import SIGNATURES
from repro.storage.store import TripleStore

BACKENDS = ["dict", "columnar", "sharded"]

ROWS = [
    ("E0", "bornIn", "E3", 0.9, 1),
    ("E1", "bornIn", "E3", 0.7, 2),
    ("E2", "livesIn", "E4", 0.8, 1),
    ("E3", "locatedIn", "E5", 1.0, 1),
    ("E0", "livesIn", "E4", 0.6, 3),
    ("E4", "locatedIn", "E5", 0.95, 1),
]

LIVE_ROWS = [
    ("E5", "bornIn", "E3", 0.85, 1),   # joins an existing posting list
    ("E1", "livesIn", "E6", 0.75, 2),
    ("E6", "type", "E7", 0.5, 1),      # brand-new predicate
    ("E5", "bornIn", "E3", 0.85, 1),   # duplicate of a delta statement
]


def _add(store, rows):
    for s, p, o, conf, count in rows:
        store.add(
            Triple(Resource(s), Resource(p), Resource(o)),
            confidence=conf,
            count=count,
        )


def _postings_by_key(store):
    """Every posting list of every signature, as id lists."""
    backend = store.backend
    out = {}
    for sig in SIGNATURES:
        bound = [slot in sig for slot in range(3)]
        for key in backend.distinct_keys(bound):
            out[(sig, key)] = list(backend.postings(bound, key))
    out[("scan",)] = list(backend.postings([False, False, False], ()))
    return out


class TestDeltaSegmentUnit:
    def test_negative_base_rejected(self):
        with pytest.raises(StorageError):
            DeltaSegment(-1)

    def test_ids_must_be_dense_above_base(self):
        delta = DeltaSegment(10)
        delta.add(10, (1, 2, 3), 0.5, 1)
        with pytest.raises(StorageError, match="dense"):
            delta.add(12, (1, 2, 3), 0.5, 1)
        delta.add(11, (4, 5, 6), 0.9, 1)
        assert len(delta) == 2
        assert delta.slot_ids(11) == (4, 5, 6)

    def test_unknown_ids_rejected(self):
        delta = DeltaSegment(5)
        delta.add(5, (1, 2, 3), 0.5, 1)
        with pytest.raises(StorageError):
            delta.weight(4)
        with pytest.raises(StorageError):
            delta.update(6, 0.1, 1)

    def test_posting_part_sorted_by_weight_then_gid(self):
        delta = DeltaSegment(0)
        delta.add(0, (1, 7, 2), 0.5, 1)
        delta.add(1, (3, 7, 2), 0.9, 1)
        delta.add(2, (4, 7, 2), 0.9, 1)  # ties break by id, ascending
        part = delta.posting_part([False, True, False], (7,))
        gids = [part.globals_[local] for local in part.postings]
        assert gids == [1, 2, 0]
        assert part.weights[1] == 0.9

    def test_captured_part_immutable_under_growth(self):
        delta = DeltaSegment(0)
        delta.add(0, (1, 7, 2), 0.5, 1)
        part = delta.posting_part([False, True, False], (7,))
        before = list(part.postings)
        delta.add(1, (3, 7, 2), 0.9, 1)
        # The old snapshot is unchanged; a fresh lookup sees the addition.
        assert list(part.postings) == before
        fresh = delta.posting_part([False, True, False], (7,))
        assert len(fresh.postings) == 2

    def test_update_invalidates_cached_parts(self):
        delta = DeltaSegment(0)
        delta.add(0, (1, 7, 2), 0.5, 1)
        delta.add(1, (3, 7, 2), 0.9, 1)
        version = delta.version
        delta.update(0, 1.5, 3)  # re-weighed past the other triple
        assert delta.version == version + 1
        part = delta.posting_part([False, True, False], (7,))
        assert [part.globals_[local] for local in part.postings] == [0, 1]

    def test_no_match_returns_none(self):
        delta = DeltaSegment(0)
        assert delta.posting_part([True, False, False], (9,)) is None
        delta.add(0, (1, 7, 2), 0.5, 1)
        assert delta.posting_part([True, False, False], (9,)) is None

    def test_key_arity_checked(self):
        delta = DeltaSegment(0)
        delta.add(0, (1, 7, 2), 0.5, 1)
        with pytest.raises(StorageError, match="arity"):
            delta.posting_part([True, True, False], (1,))

    def test_distinct_keys_first_occurrence_order(self):
        delta = DeltaSegment(0)
        delta.add(0, (1, 7, 2), 0.5, 1)
        delta.add(1, (3, 8, 2), 0.9, 1)
        delta.add(2, (4, 7, 2), 0.7, 1)
        assert delta.distinct_keys([False, True, False]) == [(7,), (8,)]
        with pytest.raises(StorageError):
            delta.distinct_keys([False, False, False])


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreByteIdentity:
    """(frozen + delta) lookups == a fresh build over the union, bit for bit."""

    def _live_and_fresh(self, backend):
        live = TripleStore("live", backend=backend)
        _add(live, ROWS)
        live.freeze()
        _add(live, LIVE_ROWS)

        fresh = TripleStore("fresh", backend=backend)
        _add(fresh, ROWS)
        _add(fresh, LIVE_ROWS)
        fresh.freeze()
        return live, fresh

    def test_posting_lists_identical(self, backend):
        live, fresh = self._live_and_fresh(backend)
        assert live.delta_size == 3  # the duplicate folded into its delta twin
        assert _postings_by_key(live) == _postings_by_key(fresh)

    def test_weights_and_records_identical(self, backend):
        live, fresh = self._live_and_fresh(backend)
        assert len(live) == len(fresh)
        for tid in range(len(fresh)):
            assert live.weight(tid) == fresh.weight(tid)
            assert live.record(tid).triple == fresh.record(tid).triple
            assert live.record(tid).count == fresh.record(tid).count
            assert live.record(tid).confidence == fresh.record(tid).confidence
        assert list(live.weights()) == list(fresh.weights())

    def test_lookup_and_cardinality_see_delta(self, backend):
        live, _ = self._live_and_fresh(backend)
        from repro.core.terms import Variable
        from repro.core.triples import TriplePattern

        record = live.lookup(
            Triple(Resource("E6"), Resource("type"), Resource("E7"))
        )
        assert record is not None
        pattern = TriplePattern(Variable("x"), Resource("bornIn"), Variable("y"))
        assert live.cardinality(pattern) == 3

    def test_duplicate_of_frozen_updates_record_not_order(self, backend):
        """Documented eventual consistency: frozen sort weights stay fixed."""
        live = TripleStore("live", backend=backend)
        _add(live, ROWS)
        live.freeze()
        frozen_weight = live.weight(0)
        tid = live.add(
            Triple(Resource("E0"), Resource("bornIn"), Resource("E3")),
            confidence=0.95,
            count=4,
        )
        assert tid == 0
        assert live.delta_size == 0
        assert live.record(0).count == 5
        assert live.record(0).confidence == 0.95
        # The frozen posting order is untouched until compaction folds it in.
        assert live.weight(0) == frozen_weight
