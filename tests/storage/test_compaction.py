"""Compaction: folding the delta into frozen storage, generations, pinning.

Directory-snapshot stores compact by writing a new ``generation-K``
layout (old segment files hardlinked, the delta frozen as one new
segment) published by an atomic ``CURRENT`` swap — a crash before the
swap must leave the previous generation active.  In-memory stores
compact by rebuilding.  Both must preserve byte-identity with a fresh
build, and the engine must swap stores without disturbing streams pinned
to the pre-compaction generation.
"""

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import PersistenceError, StorageError
from repro.storage.compaction import (
    compact_store,
    next_generation_number,
    write_generation,
)
from repro.storage.index import SIGNATURES
from repro.storage.snapshot import (
    CURRENT_NAME,
    MANIFEST_NAME,
    generation_dirname,
    is_snapshot,
    load_snapshot,
    save_snapshot,
    segment_filename,
    swap_current,
)
from repro.storage.store import TripleStore

X, Y = Variable("x"), Variable("y")

ROWS = [
    (f"E{i % 9}", ["bornIn", "livesIn", "locatedIn", "type"][i % 4],
     f"E{(i * 5 + 2) % 9}", 0.05 + (i % 17) / 20, 1 + i % 3)
    for i in range(60)
]

LIVE_ROWS = [
    ("E9", "bornIn", "E2", 0.9, 1),
    ("E1", "type", "E9", 0.65, 2),
    ("E9", "locatedIn", "E0", 0.8, 1),
    ("E9", "bornIn", "E2", 0.9, 1),  # duplicate of a delta statement
]


def _add(store, rows):
    for s, p, o, conf, count in rows:
        store.add(
            Triple(Resource(s), Resource(p), Resource(o)),
            confidence=conf,
            count=count,
        )


def _postings_by_key(store):
    backend = store.backend
    out = {}
    for sig in SIGNATURES:
        bound = [slot in sig for slot in range(3)]
        for key in backend.distinct_keys(bound):
            out[(sig, key)] = list(backend.postings(bound, key))
    out[("scan",)] = list(backend.postings([False, False, False], ()))
    return out


def _fresh_store(backend="sharded"):
    fresh = TripleStore("XKG", backend=backend)
    _add(fresh, ROWS)
    _add(fresh, LIVE_ROWS)
    fresh.freeze()
    return fresh


@pytest.fixture()
def snapshot_root(tmp_path):
    store = TripleStore("XKG", backend="sharded")
    _add(store, ROWS)
    store.freeze()
    path = tmp_path / "store.snapd"
    save_snapshot(store, path)
    store.close()
    return path


@pytest.fixture()
def live_store(snapshot_root):
    store = load_snapshot(snapshot_root)
    _add(store, LIVE_ROWS)
    return store


class TestCompactStore:
    def test_unfrozen_store_rejected(self):
        store = TripleStore("x")
        with pytest.raises(StorageError, match="frozen"):
            compact_store(store)

    def test_no_delta_is_a_noop(self):
        store = TripleStore("x")
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        store.freeze()
        assert compact_store(store) is store

    @pytest.mark.parametrize("backend", ["dict", "columnar", "sharded"])
    def test_in_memory_rebuild_matches_fresh_build(self, backend):
        store = TripleStore("XKG", backend=backend)
        _add(store, ROWS)
        store.freeze()
        _add(store, LIVE_ROWS)
        compacted = compact_store(store)
        assert compacted is not store
        assert not compacted.has_delta
        assert compacted.backend_name == store.backend_name
        fresh = _fresh_store(backend)
        assert _postings_by_key(compacted) == _postings_by_key(fresh)
        assert list(compacted.weights()) == list(fresh.weights())

    def test_rebuild_keeps_segment_count(self):
        store = TripleStore("XKG", backend="sharded")
        _add(store, ROWS)
        store.freeze()
        segments = store.backend.num_segments
        _add(store, LIVE_ROWS)
        compacted = compact_store(store)
        assert compacted.backend.num_segments == segments


class TestGenerationWrite:
    def test_writes_generation_and_swaps_current(self, snapshot_root, live_store):
        compacted = compact_store(live_store)
        gen_dir = snapshot_root / generation_dirname(1)
        assert gen_dir.is_dir()
        pointer = (snapshot_root / CURRENT_NAME).read_text().strip()
        assert pointer == generation_dirname(1)
        assert compacted.backend.generation == 1
        assert compacted.backend.snapshot_root == str(snapshot_root)
        assert compacted.backend.source_dir == str(gen_dir)
        # The delta became one new frozen segment.
        assert compacted.backend.num_segments == (
            live_store.backend.num_segments + 1
        )
        assert not compacted.has_delta

    def test_old_segments_hardlinked_not_copied(self, snapshot_root, live_store):
        compact_store(live_store)
        gen_dir = snapshot_root / generation_dirname(1)
        for index in range(live_store.backend.num_segments):
            flat = snapshot_root / segment_filename(index)
            linked = gen_dir / segment_filename(index)
            assert linked.stat().st_ino == flat.stat().st_ino

    def test_postings_identical_to_fresh_build(self, live_store):
        compacted = compact_store(live_store)
        fresh = _fresh_store()
        # Compare via the store surface: same distinct triples, same
        # lookup order everywhere (the compacted store has one more
        # segment, so raw per-segment layout differs by design).
        assert len(compacted) == len(fresh)
        for pattern in (
            TriplePattern(X, Resource("bornIn"), Y),
            TriplePattern(Resource("E9"), Variable("p"), Y),
            TriplePattern(X, Variable("p"), Y),
        ):
            assert list(compacted.sorted_ids(pattern)) == list(
                fresh.sorted_ids(pattern)
            )
        assert list(compacted.weights()) == list(fresh.weights())
        for tid in range(len(fresh)):
            assert compacted.record(tid).triple == fresh.record(tid).triple
            assert compacted.record(tid).count == fresh.record(tid).count

    def test_duplicate_evidence_for_frozen_statement_persisted(
        self, snapshot_root, live_store
    ):
        tid = live_store.add(
            Triple(Resource(ROWS[0][0]), Resource(ROWS[0][1]), Resource(ROWS[0][2])),
            confidence=0.99,
            count=7,
        )
        expected_count = live_store.record(tid).count
        compact_store(live_store)
        reopened = load_snapshot(snapshot_root)
        assert reopened.record(tid).count == expected_count
        assert reopened.record(tid).confidence == 0.99

    def test_requires_directory_backing(self):
        store = TripleStore("XKG", backend="sharded")
        _add(store, ROWS)
        store.freeze()
        _add(store, LIVE_ROWS)
        with pytest.raises(StorageError, match="directory"):
            write_generation(store)

    def test_requires_a_delta(self, snapshot_root):
        store = load_snapshot(snapshot_root)
        with pytest.raises(StorageError, match="delta"):
            write_generation(store)

    def test_snapshot_of_uncompacted_store_rejected(self, live_store, tmp_path):
        with pytest.raises(PersistenceError, match="uncompacted"):
            save_snapshot(live_store, tmp_path / "nope.snapd")


class TestCrashSafety:
    def test_unswapped_generation_is_invisible_on_reopen(
        self, snapshot_root, live_store
    ):
        """Crash window: generation written, CURRENT rename never happened."""
        gen_dir, generation = write_generation(live_store, swap=False)
        assert gen_dir.is_dir()
        assert (gen_dir / MANIFEST_NAME).exists()
        assert not (snapshot_root / CURRENT_NAME).exists()
        reopened = load_snapshot(snapshot_root)
        # The store reopens cleanly on the old generation: pre-ingest size,
        # generation 0, no delta.
        assert reopened.backend.generation == 0
        assert len(reopened) == len(live_store) - live_store.delta_size
        assert not reopened.has_delta
        # Completing the interrupted swap publishes the new generation.
        swap_current(snapshot_root, generation)
        swapped = load_snapshot(snapshot_root)
        assert swapped.backend.generation == generation
        assert len(swapped) == len(live_store)

    def test_crash_leftovers_are_skipped_not_reused(
        self, snapshot_root, live_store
    ):
        write_generation(live_store, swap=False)  # orphaned generation-0001
        assert next_generation_number(snapshot_root, 0) == 2
        compacted = compact_store(live_store)
        assert compacted.backend.generation == 2
        assert (snapshot_root / CURRENT_NAME).read_text().strip() == (
            generation_dirname(2)
        )

    def test_flat_layout_still_loads_as_generation_zero(self, snapshot_root):
        assert is_snapshot(snapshot_root)
        store = load_snapshot(snapshot_root)
        assert store.backend.generation == 0
        assert store.backend.snapshot_root == str(snapshot_root)


class TestMultiRound:
    def test_generations_accumulate(self, snapshot_root):
        store = load_snapshot(snapshot_root)
        for round_number in (1, 2, 3):
            store.add(
                Triple(
                    Resource(f"N{round_number}"),
                    Resource("type"),
                    Resource("Round"),
                ),
                confidence=0.5,
            )
            store = compact_store(store)
            assert store.backend.generation == round_number
        assert store.backend.num_segments >= 4
        reopened = load_snapshot(snapshot_root)
        assert reopened.backend.generation == 3
        assert list(reopened.weights()) == list(store.weights())


class TestEngineLifecycle:
    def test_inline_compaction_at_threshold(self, snapshot_root):
        config = EngineConfig(
            executor_kind="serial", merge_batch=1, compaction_threshold=3
        )
        with TriniT.open(snapshot_root, config=config) as engine:
            assert engine.generation == 0
            for s, p, o, conf, count in LIVE_ROWS[:2]:
                engine.ingest(
                    [Triple(Resource(s), Resource(p), Resource(o))],
                    confidence=conf,
                )
            assert engine.store.delta_size == 2  # below threshold: no swap
            assert engine.generation == 0
            engine.ingest(
                [Triple(Resource("E9"), Resource("locatedIn"), Resource("E0"))],
                confidence=0.8,
            )
            # Serial engines compact inline the moment the threshold hits.
            assert engine.store.delta_size == 0
            assert engine.generation == 1

    def test_explicit_compact_returns_generation(self, snapshot_root):
        config = EngineConfig(executor_kind="serial", merge_batch=1)
        with TriniT.open(snapshot_root, config=config) as engine:
            assert engine.compact() == 0  # nothing to do
            engine.ingest(
                [Triple(Resource("E9"), Resource("bornIn"), Resource("E2"))],
                confidence=0.9,
            )
            assert engine.compact() == 1
            assert not engine.store.has_delta

    def test_answers_identical_across_ingest_and_compaction(self, snapshot_root):
        # Rule miners run once at construction, so a live-ingesting engine
        # and a fresh-built one can legitimately mine different rule sets;
        # disable mining to compare the storage/merge contract in isolation.
        config = EngineConfig(
            executor_kind="serial",
            merge_batch=1,
            mine_arg_overlap=False,
            mine_chains=False,
            mine_inversions=False,
        )
        reference = TriniT(_fresh_store(), config=config)
        queries = ["?x bornIn ?y", "?x ?p ?y", "E9 ?p ?y"]
        with TriniT.open(snapshot_root, config=config) as engine:
            for s, p, o, conf, count in LIVE_ROWS:
                for _ in range(count):
                    engine.ingest(
                        [Triple(Resource(s), Resource(p), Resource(o))],
                        confidence=conf,
                    )
            before = {
                text: [(a.binding, a.score) for a in engine.ask(text, k=15)]
                for text in queries
            }
            engine.compact()
            for text in queries:
                expected = [
                    (a.binding, a.score) for a in reference.ask(text, k=15)
                ]
                assert before[text] == expected
                after = [(a.binding, a.score) for a in engine.ask(text, k=15)]
                assert after == expected
        reference.close()

    def test_delta_hits_counted(self, snapshot_root):
        config = EngineConfig(executor_kind="serial", merge_batch=1)
        with TriniT.open(snapshot_root, config=config) as engine:
            engine.ingest(
                [Triple(Resource("E9"), Resource("bornIn"), Resource("E2"))],
                confidence=0.9,
            )
            stream = engine.stream("?x bornIn ?y")
            stream.next_k(20)
            assert stream.stats.delta_hits > 0

    def test_pinned_stream_survives_compaction_byte_identically(
        self, snapshot_root, tmp_path
    ):
        """A stream opened pre-compaction resumes on its pinned generation."""
        reference_root = tmp_path / "reference.snapd"
        ref_store = TripleStore("XKG", backend="sharded")
        _add(ref_store, ROWS)
        ref_store.freeze()
        save_snapshot(ref_store, reference_root)
        ref_store.close()

        config = EngineConfig(executor_kind="serial", merge_batch=1)
        with TriniT.open(reference_root, config=config) as reference, TriniT.open(
            snapshot_root, config=config
        ) as engine:
            ref_stream = reference.stream("?x ?p ?y")
            stream = engine.stream("?x ?p ?y")
            assert [(a.binding, a.score) for a in stream.next_k(5)] == [
                (a.binding, a.score) for a in ref_stream.next_k(5)
            ]
            # Ingest + compact retire the store the stream is reading.
            for s, p, o, conf, count in LIVE_ROWS:
                engine.ingest(
                    [Triple(Resource(s), Resource(p), Resource(o))],
                    confidence=conf,
                )
            assert engine.compact() == 1
            # The pinned stream continues against the pre-ingest view:
            # byte-identical to the reference engine that never ingested.
            while True:
                expected = ref_stream.next_k(7)
                got = stream.next_k(7)
                assert [(a.binding, a.score) for a in got] == [
                    (a.binding, a.score) for a in expected
                ]
                if not expected:
                    break
            # New streams see the compacted store (the ingested E9 facts).
            fresh_stream = engine.stream("E9 ?p ?y")
            assert len(fresh_stream.next_k(10)) > 0
