"""Unit tests for the term dictionary."""

import pytest

from repro.core.terms import Resource, TextToken
from repro.errors import DictionaryError
from repro.storage.dictionary import TermDictionary


class TestTermDictionary:
    def test_encode_is_dense_and_stable(self):
        d = TermDictionary()
        a = d.encode(Resource("A"))
        b = d.encode(Resource("B"))
        assert (a, b) == (0, 1)
        assert d.encode(Resource("A")) == 0

    def test_decode_roundtrip(self):
        d = TermDictionary()
        term = TextToken("housed in")
        term_id = d.encode(term)
        assert d.decode(term_id) == term

    def test_id_of_missing_is_none(self):
        d = TermDictionary()
        assert d.id_of(Resource("Missing")) is None

    def test_require_id_raises(self):
        d = TermDictionary()
        with pytest.raises(DictionaryError):
            d.require_id(Resource("Missing"))

    def test_decode_out_of_range(self):
        d = TermDictionary()
        with pytest.raises(DictionaryError):
            d.decode(0)
        d.encode(Resource("A"))
        with pytest.raises(DictionaryError):
            d.decode(1)
        with pytest.raises(DictionaryError):
            d.decode(-1)

    def test_contains_and_len(self):
        d = TermDictionary()
        assert len(d) == 0
        d.encode(Resource("A"))
        assert Resource("A") in d
        assert Resource("B") not in d
        assert len(d) == 1

    def test_token_identity_by_normalisation(self):
        d = TermDictionary()
        first = d.encode(TextToken("Housed In"))
        second = d.encode(TextToken("housed  in"))
        assert first == second

    def test_ids_of_kind(self):
        d = TermDictionary()
        d.encode(Resource("A"))
        d.encode(TextToken("a phrase"))
        d.encode(Resource("B"))
        assert d.ids_of_kind("resource") == [0, 2]
        assert d.ids_of_kind("token") == [1]

    def test_iteration_order(self):
        d = TermDictionary()
        terms = [Resource("C"), Resource("A"), Resource("B")]
        for term in terms:
            d.encode(term)
        assert list(d) == terms
