"""Directory snapshots (format v3): per-segment files + manifest.

The v3 layout's contract extends the single-file one: byte-identical
postings and answers after a round trip, v2 files migrate losslessly, and —
because segment files load lazily, possibly in *worker processes* — damage
to the directory (missing or swapped segment files, corrupt manifest) must
surface as :class:`StorageError`, never as a KeyError or a wrong answer.
"""

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.errors import PersistenceError, StorageError
from repro.storage.index import SIGNATURES
from repro.storage.persistence import load_store
from repro.storage.snapshot import (
    MAGIC,
    MANIFEST_NAME,
    is_snapshot,
    load_snapshot,
    save_snapshot,
    segment_filename,
)
from repro.storage.store import TripleStore


@pytest.fixture()
def sharded_store(frozen_small_store) -> TripleStore:
    return frozen_small_store.convert("sharded")


@pytest.fixture()
def snapshot_dir(sharded_store, tmp_path):
    path = tmp_path / "store.snapd"
    save_snapshot(sharded_store, path)
    return path


def _all_posting_bytes(store):
    backend = store.backend
    out = {}
    for sig in SIGNATURES:
        bound = [slot in sig for slot in range(3)]
        for key in backend.distinct_keys(bound):
            out[(sig, key)] = bytes(backend.postings(bound, key))
    out[("scan",)] = bytes(backend.postings([False, False, False], ()))
    return out


class TestDirectoryLayout:
    def test_writes_manifest_plus_one_file_per_segment(
        self, sharded_store, snapshot_dir
    ):
        names = sorted(p.name for p in snapshot_dir.iterdir())
        expected = sorted(
            [MANIFEST_NAME]
            + [
                segment_filename(i)
                for i in range(sharded_store.backend.num_segments)
            ]
        )
        assert names == expected

    def test_every_file_is_a_self_contained_container(self, snapshot_dir):
        for path in snapshot_dir.iterdir():
            assert path.read_bytes()[: len(MAGIC)] == MAGIC

    def test_is_snapshot_on_directories(self, snapshot_dir, tmp_path):
        assert is_snapshot(snapshot_dir)
        empty = tmp_path / "not_a_snapshot"
        empty.mkdir()
        assert not is_snapshot(empty)

    def test_columnar_store_falls_back_to_single_file(
        self, frozen_small_store, tmp_path
    ):
        path = tmp_path / "columnar.snap"
        save_snapshot(frozen_small_store, path, version=3)
        assert path.is_file()
        loaded = load_snapshot(path)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(
            frozen_small_store
        )

    def test_target_collides_with_existing_file(self, sharded_store, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(PersistenceError, match="not a directory"):
            save_snapshot(sharded_store, path)


class TestRoundtripFidelity:
    def test_byte_identical_postings(self, sharded_store, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(sharded_store)
        assert loaded.backend.segment_sizes() == (
            sharded_store.backend.segment_sizes()
        )

    def test_records_and_weights_survive(self, sharded_store, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        assert len(loaded) == len(sharded_store)
        assert list(loaded.weights()) == list(sharded_store.weights())
        for tid in range(len(sharded_store)):
            original, reloaded = sharded_store.record(tid), loaded.record(tid)
            assert reloaded.triple == original.triple
            assert reloaded.count == original.count
            assert reloaded.confidence == original.confidence
            assert reloaded.provenances == original.provenances

    def test_source_dir_remembered(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        assert loaded.backend.source_dir == str(snapshot_dir)
        # Single-file and in-memory backends have no re-open address.
        assert TripleStore("t").freeze().convert("sharded").backend.source_dir is None

    def test_segments_load_lazily_per_file(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        assert loaded.backend.loaded_segments() == []
        loaded.backend.load_segments()
        assert loaded.backend.loaded_segments() == list(
            range(loaded.backend.num_segments)
        )

    def test_map_file_false_reads_private_buffers(
        self, sharded_store, snapshot_dir
    ):
        loaded = load_snapshot(snapshot_dir, map_file=False)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(sharded_store)

    def test_load_store_and_engine_open_dispatch(
        self, sharded_store, snapshot_dir
    ):
        assert len(load_store(snapshot_dir)) == len(sharded_store)
        with TriniT.open(
            snapshot_dir, config=EngineConfig(parallelism=1)
        ) as engine:
            answers = engine.ask("?x bornIn ?y", k=5)
            assert len(answers) == 2

    def test_close_releases_directory_mappings(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        loaded.backend.load_segments()
        loaded.close()
        with pytest.raises(StorageError):
            loaded.backend.postings([True, False, False], (0,))


class TestMigration:
    def test_v2_single_file_to_v3_directory(self, sharded_store, tmp_path):
        v2_path = tmp_path / "store.v2.snap"
        save_snapshot(sharded_store, v2_path, version=2)
        via_v2 = load_snapshot(v2_path)
        v3_path = tmp_path / "store.v3.snapd"
        save_snapshot(via_v2, v3_path, version=3)
        via_v3 = load_snapshot(v3_path)
        assert v3_path.is_dir()
        assert _all_posting_bytes(via_v3) == _all_posting_bytes(sharded_store)
        assert list(via_v3.weights()) == list(sharded_store.weights())
        for tid in range(len(sharded_store)):
            assert via_v3.record(tid).triple == sharded_store.record(tid).triple

    def test_v2_files_still_load(self, sharded_store, tmp_path):
        path = tmp_path / "store.v2.snap"
        save_snapshot(sharded_store, path, version=2)
        loaded = load_snapshot(path)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(sharded_store)
        assert loaded.backend.source_dir is None


class TestDamage:
    def test_missing_manifest(self, snapshot_dir):
        (snapshot_dir / MANIFEST_NAME).unlink()
        assert not is_snapshot(snapshot_dir)
        with pytest.raises(PersistenceError, match="manifest"):
            load_snapshot(snapshot_dir)
        with pytest.raises(PersistenceError):
            load_store(snapshot_dir)

    def test_corrupt_manifest_magic(self, snapshot_dir):
        manifest = snapshot_dir / MANIFEST_NAME
        manifest.write_bytes(b"garbage" + manifest.read_bytes()[7:])
        with pytest.raises(PersistenceError, match="magic") as excinfo:
            load_snapshot(snapshot_dir)
        # Diagnosability: the error must name the offending file.
        assert str(manifest) in str(excinfo.value)

    def test_truncated_manifest(self, snapshot_dir):
        manifest = snapshot_dir / MANIFEST_NAME
        manifest.write_bytes(manifest.read_bytes()[:40])
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_dir)

    def test_missing_segment_file_surfaces_as_storage_error(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        missing = snapshot_dir / segment_filename(0)
        missing.unlink()
        # The manifest loads fine; the damage surfaces when segment 0 is
        # touched — PersistenceError is a StorageError, so storage-layer
        # callers need no new except clause.
        with pytest.raises(StorageError, match="missing segment file") as excinfo:
            loaded.backend.load_segments()
        # The error names the missing file, not just the segment index.
        assert str(missing) in str(excinfo.value)

    def test_swapped_segment_file_rejected(self, snapshot_dir):
        seg0 = snapshot_dir / segment_filename(0)
        seg1 = snapshot_dir / segment_filename(1)
        seg0.write_bytes(seg1.read_bytes())
        loaded = load_snapshot(snapshot_dir)
        with pytest.raises(StorageError, match="claims segment") as excinfo:
            loaded.backend.load_segments()
        # Expected vs actual identity, anchored to the offending path.
        message = str(excinfo.value)
        assert str(seg0) in message
        assert "claims segment 1" in message
        assert "expected 0" in message

    def test_manifest_in_segment_slot_rejected(self, snapshot_dir):
        seg0 = snapshot_dir / segment_filename(0)
        seg0.write_bytes((snapshot_dir / MANIFEST_NAME).read_bytes())
        loaded = load_snapshot(snapshot_dir)
        with pytest.raises(StorageError, match="kind") as excinfo:
            loaded.backend.load_segments()
        message = str(excinfo.value)
        assert str(seg0) in message
        assert "'manifest'" in message
        assert "expected a segment container" in message

    def test_segment_file_opened_directly_is_redirected(self, snapshot_dir):
        with pytest.raises(PersistenceError, match="directory"):
            load_snapshot(snapshot_dir / segment_filename(0))
        with pytest.raises(PersistenceError, match="directory"):
            load_snapshot(snapshot_dir / MANIFEST_NAME)

    def test_non_snapshot_directory_via_load_store(self, tmp_path):
        plain = tmp_path / "plain_dir"
        plain.mkdir()
        with pytest.raises(PersistenceError, match="snapshot directory"):
            load_store(plain)


class TestGenerationPointerDamage:
    """Damage to the ``CURRENT`` generation pointer (compacted layouts)."""

    def test_current_naming_garbage_rejected(self, snapshot_dir):
        (snapshot_dir / "CURRENT").write_text("not-a-generation\n")
        assert not is_snapshot(snapshot_dir)
        with pytest.raises(PersistenceError, match="CURRENT") as excinfo:
            load_snapshot(snapshot_dir)
        message = str(excinfo.value)
        assert str(snapshot_dir) in message
        assert "not-a-generation" in message

    def test_current_pointing_at_missing_generation(self, snapshot_dir):
        (snapshot_dir / "CURRENT").write_text("generation-0007\n")
        with pytest.raises(PersistenceError, match="missing generation") as excinfo:
            load_snapshot(snapshot_dir)
        assert str(snapshot_dir / "generation-0007") in str(excinfo.value)
