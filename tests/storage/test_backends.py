"""Backend conformance: dict, columnar and sharded must be observationally identical.

The StorageBackend protocol is the sharding/persistence seam — anything a
backend leaks (mutable postings, divergent orders) becomes a query-processing
bug, so these tests drive all implementations through the same scenarios
and compare every observable against the "dict" reference.
"""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import StorageError
from repro.storage.backend import (
    BACKENDS,
    DictBackend,
    StorageBackend,
    make_backend,
)
from repro.storage.columnar import ColumnarBackend
from repro.storage.sharded import ShardedBackend
from repro.storage.store import TripleStore

X, Y, P = Variable("x"), Variable("y"), Variable("p")

BACKEND_NAMES = ("dict", "columnar", "sharded")


def _sample_store(backend: str) -> TripleStore:
    store = TripleStore("conformance", backend=backend)
    ae, mc = Resource("AlbertEinstein"), Resource("MarieCurie")
    born, aff = Resource("bornIn"), Resource("affiliation")
    store.add(Triple(ae, born, Resource("Ulm")))
    store.add(Triple(mc, born, Resource("Warsaw")), confidence=0.9, count=3)
    store.add(Triple(ae, aff, Resource("IAS")), count=2)
    store.add(Triple(mc, aff, Resource("Sorbonne")))
    store.add(Triple(ae, TextToken("lectured at"), Resource("IAS")), confidence=0.8)
    store.add(Triple(ae, Resource("knows"), ae))
    return store.freeze()


PATTERNS = [
    TriplePattern(X, Resource("bornIn"), Y),
    TriplePattern(Resource("AlbertEinstein"), P, Y),
    TriplePattern(X, P, Resource("IAS")),
    TriplePattern(X, TextToken("lectured at"), Y),
    TriplePattern(X, P, Y),
    TriplePattern(X, Resource("knows"), X),
    TriplePattern(Resource("Nobody"), P, Y),
]


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKEND_NAMES) <= set(BACKENDS)

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("dict"), DictBackend)
        assert isinstance(make_backend("columnar"), ColumnarBackend)
        assert isinstance(make_backend("sharded"), ShardedBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            make_backend("elasticsearch")

    def test_protocol_conformance(self):
        for name in BACKEND_NAMES:
            assert isinstance(make_backend(name), StorageBackend)

    def test_used_backend_instance_rejected(self):
        backend = make_backend("columnar")
        backend.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            make_backend(backend)


class TestCrossBackendEquivalence:
    def test_sorted_ids_identical(self):
        stores = {name: _sample_store(name) for name in BACKEND_NAMES}
        for pattern in PATTERNS:
            results = {
                name: list(store.sorted_ids(pattern))
                for name, store in stores.items()
            }
            for name in BACKEND_NAMES[1:]:
                assert results[name] == results["dict"], (name, pattern.n3())

    def test_weights_slot_ids_and_counts_identical(self):
        stores = {name: _sample_store(name) for name in BACKEND_NAMES}
        size = len(stores["dict"])
        for name in BACKEND_NAMES[1:]:
            assert len(stores[name]) == size
        for tid in range(size):
            reference = (
                stores["dict"].spo_ids(tid),
                stores["dict"].weight(tid),
                stores["dict"].backend.count(tid),
            )
            for name in BACKEND_NAMES[1:]:
                observed = (
                    stores[name].spo_ids(tid),
                    stores[name].weight(tid),
                    stores[name].backend.count(tid),
                )
                assert observed == reference, (name, tid)

    def test_distinct_keys_identical(self):
        stores = {name: _sample_store(name) for name in BACKEND_NAMES}
        for bound in ([True, False, False], [False, True, False], [True, True, False]):
            keys = {
                name: store.backend.distinct_keys(bound)
                for name, store in stores.items()
            }
            # Same keys *and* the same first-occurrence order.
            for name in BACKEND_NAMES[1:]:
                assert keys[name] == keys["dict"], (name, bound)

    def test_postings_ids_matches_sorted_ids(self):
        for name in BACKEND_NAMES:
            store = _sample_store(name)
            born = store.dictionary.id_of(Resource("bornIn"))
            pattern_ids = list(store.sorted_ids(TriplePattern(X, Resource("bornIn"), Y)))
            assert list(store.postings_ids(None, born, None)) == pattern_ids

    @pytest.mark.parametrize("target", ("columnar", "sharded"))
    def test_convert_preserves_everything(self, target):
        original = _sample_store("dict")
        converted = original.convert(target)
        assert converted.backend_name == target
        assert converted.is_frozen
        assert len(converted) == len(original)
        for pattern in PATTERNS:
            assert list(converted.sorted_ids(pattern)) == list(
                original.sorted_ids(pattern)
            )
        for tid in range(len(original)):
            assert converted.record(tid).triple == original.record(tid).triple
            assert converted.record(tid).count == original.record(tid).count
            assert converted.spo_ids(tid) == original.spo_ids(tid)


class TestImmutability:
    def test_dict_postings_are_tuples(self):
        store = _sample_store("dict")
        postings = store.sorted_ids(TriplePattern(X, Resource("bornIn"), Y))
        assert isinstance(postings, tuple)

    def test_columnar_postings_are_readonly_views(self):
        store = _sample_store("columnar")
        postings = store.sorted_ids(TriplePattern(X, Resource("bornIn"), Y))
        assert isinstance(postings, memoryview)
        assert postings.readonly
        with pytest.raises(TypeError):
            postings[0] = 99

    def test_scan_postings_are_immutable(self):
        for name in BACKEND_NAMES:
            store = _sample_store(name)
            scan = store.sorted_ids(TriplePattern(X, P, Y))
            assert not hasattr(scan, "append")
            before = list(scan)
            assert list(store.sorted_ids(TriplePattern(X, P, Y))) == before

    def test_empty_lookup_shared_tuple_cannot_corrupt(self):
        """The historical bug: the shared empty posting could be mutated."""
        for name in BACKEND_NAMES:
            store = _sample_store(name)
            missing = TriplePattern(Resource("Nobody"), P, Y)
            empty = store.sorted_ids(missing)
            assert len(empty) == 0
            assert not hasattr(empty, "append")
            assert list(store.sorted_ids(missing)) == []


class TestBuildPhaseGuards:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_dense_ids_required(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            backend.insert(2, (1, 2, 3))

    @pytest.mark.parametrize("name", ("columnar", "sharded"))
    def test_rejects_insert_after_freeze(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        backend.freeze([1.0])
        with pytest.raises(StorageError):
            backend.insert(1, (4, 5, 6))

    @pytest.mark.parametrize("name", ("columnar", "sharded"))
    def test_rejects_double_freeze(self, name):
        backend = make_backend(name)
        backend.freeze([])
        with pytest.raises(StorageError):
            backend.freeze([])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_weight_arity_checked(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            backend.freeze([1.0, 2.0])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_count_arity_checked(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            backend.freeze([1.0], [2, 3])

    @pytest.mark.parametrize("name", ("columnar", "sharded"))
    def test_lookup_requires_freeze(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            backend.postings([True, False, False], (1,))

    @pytest.mark.parametrize("name", ("columnar", "sharded"))
    def test_memory_accounting(self, name):
        store = _sample_store(name)
        assert store.backend.memory_bytes() > 0


class TestCountConformance:
    """count() is part of the protocol: same values, same error shape."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_counts_from_store_freeze(self, name):
        store = _sample_store(name)
        for tid, record in enumerate(store.records()):
            assert store.backend.count(tid) == record.count

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_unknown_id_raises_storage_error(self, name):
        store = _sample_store(name)
        with pytest.raises(StorageError):
            store.backend.count(len(store))
        with pytest.raises(StorageError):
            store.backend.count(-1)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_frozen_without_counts_raises_storage_error(self, name):
        backend = make_backend(name)
        backend.insert(0, (1, 2, 3))
        backend.freeze([2.0])  # no counts column
        with pytest.raises(StorageError):
            backend.count(0)


class TestScanSignatureContract:
    def test_distinct_keys_scan_raises_storage_error_on_all(self):
        for name in BACKEND_NAMES:
            store = _sample_store(name)
            with pytest.raises(StorageError):
                store.backend.distinct_keys([False, False, False])

    def test_freeze_accepts_counts_column(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name)
            backend.insert(0, (1, 2, 3))
            backend.freeze([2.0], [2])
            assert list(backend.postings([True, False, False], (1,))) == [0]
            assert backend.count(0) == 2
