"""Process-pool segment workers: remote head preparation over directory
snapshots.

Pins the worker-side function (:func:`~repro.storage.procpool.prepare_heads`
produces exactly the heads the consuming thread would prepare inline), the
per-process snapshot cache, and the IPC economics: merges only ship ranges
of at least :data:`~repro.storage.sharded.REMOTE_MIN_BATCH` heads to the
pool — smaller claims are prepared inline, so shallow probes never pay a
round trip.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.storage import procpool
from repro.storage.procpool import prepare_heads, process_context
from repro.storage.sharded import REMOTE_MIN_BATCH
from repro.storage.snapshot import load_snapshot, save_snapshot

SCAN = (False, False, False)


class CountingPool(ProcessPoolExecutor):
    """A real process pool that counts submissions (isinstance-compatible,
    so ``configure_prefetch`` treats it as remote)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.submitted = 0

    def submit(self, fn, /, *args, **kwargs):
        self.submitted += 1
        return super().submit(fn, *args, **kwargs)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    store = TriniT.from_triples(
        [],
        [
            (
                Triple(
                    Resource(f"E{i}"),
                    Resource(f"p{i % 3}"),
                    Resource(f"E{(i * 5) % 23}"),
                ),
                None,
                0.05 + (i % 19) / 20,
            )
            for i in range(3000)
        ],
        config=EngineConfig(storage_backend="sharded", parallelism=1),
    ).store
    path = tmp_path_factory.mktemp("procpool") / "store.snapd"
    save_snapshot(store, path)
    store.close()
    return path


def test_process_context_available():
    assert process_context() is not None


def test_prepare_heads_matches_inline(snapshot_dir):
    backend = load_snapshot(snapshot_dir).backend
    for index in range(backend.num_segments):
        remote_kw, remote_kg = prepare_heads(
            str(snapshot_dir), index, SCAN, (), 0, 40
        )
        local = backend._segment(index).postings(SCAN, ())
        globals_ = backend._globals[index]
        inline = [
            (-backend._weights[gid], gid)
            for gid in map(globals_.__getitem__, local[:40])
        ]
        assert list(zip(remote_kw, remote_kg)) == inline


def test_prepare_heads_matches_segment_stream_block(snapshot_dir):
    """Remote and inline block preparation produce the identical block."""
    from repro.storage.sharded import _SegmentStream

    backend = load_snapshot(snapshot_dir).backend
    postings = backend._segment(0).postings(SCAN, ())
    stream = _SegmentStream(postings, backend._globals[0])
    inline = stream.prepare_block(backend._weights, 3, 50)
    remote = prepare_heads(str(snapshot_dir), 0, SCAN, (), 3, 50)
    assert tuple(inline[0]) == tuple(remote[0])
    assert tuple(inline[1]) == tuple(remote[1])


def test_worker_cache_reuses_backend(snapshot_dir):
    procpool._CACHE.clear()
    prepare_heads(str(snapshot_dir), 0, SCAN, (), 0, 5)
    cached = procpool._CACHE[str(snapshot_dir)]
    prepare_heads(str(snapshot_dir), 1, SCAN, (), 0, 5)
    assert procpool._CACHE[str(snapshot_dir)] is cached


def _drained(backend):
    postings = backend.postings(SCAN, ())
    return list(postings)


def test_large_batches_go_remote_and_match(snapshot_dir):
    reference_backend = load_snapshot(snapshot_dir).backend
    reference = _drained(reference_backend)
    backend = load_snapshot(snapshot_dir).backend
    with CountingPool(max_workers=2, mp_context=process_context()) as pool:
        backend.configure_prefetch(pool, REMOTE_MIN_BATCH * 2)
        assert _drained(backend) == reference
        assert pool.submitted > 0


def test_small_batches_stay_inline(snapshot_dir):
    reference_backend = load_snapshot(snapshot_dir).backend
    reference = _drained(reference_backend)
    backend = load_snapshot(snapshot_dir).backend
    with CountingPool(max_workers=2, mp_context=process_context()) as pool:
        backend.configure_prefetch(pool, REMOTE_MIN_BATCH // 4)
        assert _drained(backend) == reference
        assert pool.submitted == 0  # below REMOTE_MIN_BATCH: all inline
