"""Segment-aware snapshots (format v2): round-trip, laziness, migration.

PR 2's snapshot collapsed every store into one monolithic columnar section
set; format v2 writes one section group per segment so a sharded store
round-trips with its segmentation intact, segments mmap-load lazily (or in
parallel), and records / the term dictionary materialise on first touch.
This module covers the parts unique to v2 — general snapshot fidelity lives
in test_snapshot.py and cross-backend equivalence in test_backends.py.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import PersistenceError
from repro.storage.index import SIGNATURES
from repro.storage.persistence import load_store
from repro.storage.sharded import ShardedBackend
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.storage.store import TripleStore
from repro.topk.processor import TopKProcessor

X, Y, P = Variable("x"), Variable("y"), Variable("p")


def _build_store(backend="sharded", people: int = 30) -> TripleStore:
    store = TripleStore("seg-test", backend=backend)
    for i in range(people):
        person = Resource(f"Person{i}")
        store.add(
            Triple(person, Resource("affiliation"), Resource(f"Uni{i % 4}")),
            confidence=0.5 + 0.5 * ((i * 7) % 10) / 10,
            count=1 + i % 3,
        )
        store.add(Triple(person, Resource("type"), Resource("person")))
    store.add(
        Triple(Resource("Person0"), TextToken("works at"), Resource("Uni0")),
        confidence=0.8,
    )
    return store.freeze()


def _all_posting_bytes(store):
    backend = store.backend
    out = {}
    for sig in SIGNATURES:
        bound = [slot in sig for slot in range(3)]
        for key in backend.distinct_keys(bound):
            out[(sig, key)] = bytes(backend.postings(bound, key))
    out[("scan",)] = bytes(backend.postings([False, False, False], ()))
    return out


@pytest.fixture()
def sharded_store() -> TripleStore:
    return _build_store()


@pytest.fixture()
def sharded_snapshot(sharded_store, tmp_path):
    path = tmp_path / "sharded.snap"
    save_snapshot(sharded_store, path)
    return path


class TestShardedRoundtrip:
    def test_segmentation_preserved(self, sharded_store, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        assert isinstance(loaded.backend, ShardedBackend)
        assert loaded.backend.num_segments == sharded_store.backend.num_segments
        assert loaded.backend.segment_sizes() == sharded_store.backend.segment_sizes()

    def test_postings_byte_identical(self, sharded_store, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(sharded_store)

    def test_custom_segment_count_survives(self, tmp_path):
        store = _build_store(backend=ShardedBackend(7))
        path = tmp_path / "seven.snap"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.backend.num_segments == 7
        assert loaded.backend.segment_sizes() == store.backend.segment_sizes()

    def test_identical_topk_answers(self, sharded_store, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        from repro.core.parser import parse_query

        for text in ("?x affiliation ?y", "?x 'works at' ?y", "?x ?p ?y"):
            query = parse_query(text)
            reference = TopKProcessor(sharded_store).query(query, 10)
            answers = TopKProcessor(loaded).query(query, 10)
            assert [(a.binding, a.score) for a in answers] == [
                (a.binding, a.score) for a in reference
            ]

    def test_records_survive(self, sharded_store, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        for tid in range(len(sharded_store)):
            ours, theirs = sharded_store.record(tid), loaded.record(tid)
            assert ours.triple == theirs.triple
            assert ours.count == theirs.count
            assert ours.confidence == theirs.confidence

    def test_resave_is_faithful(self, sharded_snapshot, tmp_path):
        loaded = load_snapshot(sharded_snapshot)
        again = tmp_path / "again.snap"
        save_snapshot(loaded, again)
        reloaded = load_snapshot(again)
        assert reloaded.backend.segment_sizes() == loaded.backend.segment_sizes()
        assert _all_posting_bytes(reloaded) == _all_posting_bytes(loaded)


class TestLazyMaterialization:
    def test_segments_load_on_first_touch(self, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        assert loaded.backend.loaded_segments() == []
        _ = loaded.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))[0]
        assert loaded.backend.loaded_segments() != []

    def test_load_segments_eagerly(self, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        loaded.backend.load_segments()
        assert loaded.backend.loaded_segments() == list(
            range(loaded.backend.num_segments)
        )

    def test_load_segments_in_parallel(self, sharded_store, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        with ThreadPoolExecutor(max_workers=4) as pool:
            loaded.backend.load_segments(pool)
        assert loaded.backend.loaded_segments() == list(
            range(loaded.backend.num_segments)
        )
        assert _all_posting_bytes(loaded) == _all_posting_bytes(sharded_store)

    def test_dictionary_lazy_until_first_access(self, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        assert not loaded.dictionary.is_materialized
        loaded.dictionary.require_id(Resource("Person0"))
        assert loaded.dictionary.is_materialized

    def test_records_lazy_until_first_access(self, sharded_snapshot):
        loaded = load_snapshot(sharded_snapshot)
        assert loaded._triples.materialized == 0
        record = loaded.record(3)
        assert record is loaded.record(3)  # cached, not re-decoded
        assert loaded._triples.materialized == 1

    def test_columnar_v2_snapshot_is_lazy_too(self, tmp_path):
        store = _build_store(backend="columnar")
        path = tmp_path / "columnar.snap"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert not loaded.dictionary.is_materialized
        assert loaded._triples.materialized == 0


class TestLegacyFormat:
    def test_version_1_still_loads(self, tmp_path):
        store = _build_store(backend="columnar")
        path = tmp_path / "legacy.snap"
        save_snapshot(store, path, version=1)
        loaded = load_store(path)  # magic-sniffed
        assert len(loaded) == len(store)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(store)

    def test_version_1_cannot_carry_sharded(self, sharded_store, tmp_path):
        with pytest.raises(PersistenceError):
            save_snapshot(sharded_store, tmp_path / "nope.snap", version=1)

    def test_unknown_version_rejected(self, sharded_store, tmp_path):
        with pytest.raises(PersistenceError):
            save_snapshot(sharded_store, tmp_path / "nope.snap", version=99)

    def test_legacy_to_segmented_migration(self, tmp_path):
        """v1 file → load → convert to sharded → v2 file → identical store."""
        origin = _build_store(backend="columnar")
        old_path, new_path = tmp_path / "old.snap", tmp_path / "new.snap"
        save_snapshot(origin, old_path, version=1)

        migrated = load_snapshot(old_path).convert("sharded")
        save_snapshot(migrated, new_path)

        loaded = load_snapshot(new_path)
        assert isinstance(loaded.backend, ShardedBackend)
        assert len(loaded) == len(origin)
        assert list(loaded.weights()) == list(origin.weights())
        # Same global (weight desc, id asc) posting order either way.
        scan = TriplePattern(X, P, Y)
        assert list(loaded.sorted_ids(scan)) == list(origin.sorted_ids(scan))
        for tid in range(len(origin)):
            assert loaded.record(tid).triple == origin.record(tid).triple
