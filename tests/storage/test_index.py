"""Unit tests for the posting-list index."""

import pytest

from repro.errors import StorageError
from repro.storage.index import PostingIndex, SIGNATURES, signature_of


class TestSignatureOf:
    def test_all_bound(self):
        assert signature_of([True, True, True]) == (0, 1, 2)

    def test_none_bound(self):
        assert signature_of([False, False, False]) == ()

    def test_mixed(self):
        assert signature_of([True, False, True]) == (0, 2)

    def test_all_signatures_covered(self):
        assert len(SIGNATURES) == 7


class TestPostingIndex:
    def _build(self):
        """Three triples over small id space; weights favour triple 2."""
        index = PostingIndex()
        index.insert(0, (10, 20, 30))
        index.insert(1, (10, 20, 31))
        index.insert(2, (11, 20, 30))
        index.freeze(weights=[1.0, 5.0, 3.0])
        return index

    def test_lookup_requires_freeze(self):
        index = PostingIndex()
        index.insert(0, (1, 2, 3))
        with pytest.raises(StorageError):
            index.postings([True, False, False], (1,))

    def test_insert_after_freeze_rejected(self):
        index = self._build()
        with pytest.raises(StorageError):
            index.insert(3, (1, 2, 3))

    def test_double_freeze_rejected(self):
        index = self._build()
        with pytest.raises(StorageError):
            index.freeze([])

    def test_postings_by_subject(self):
        index = self._build()
        assert list(index.postings([True, False, False], (10,))) == [1, 0]

    def test_postings_by_predicate_sorted_by_weight(self):
        index = self._build()
        assert list(index.postings([False, True, False], (20,))) == [1, 2, 0]

    def test_postings_full_triple(self):
        index = self._build()
        assert list(index.postings([True, True, True], (10, 20, 30))) == [0]

    def test_missing_key_empty(self):
        index = self._build()
        assert list(index.postings([True, False, False], (99,))) == []

    def test_scan_sorted(self):
        index = self._build()
        assert list(index.postings([False, False, False], ())) == [1, 2, 0]

    def test_arity_mismatch_rejected(self):
        index = self._build()
        with pytest.raises(StorageError):
            index.postings([True, True, False], (10,))

    def test_tie_break_by_id(self):
        index = PostingIndex()
        index.insert(0, (1, 1, 1))
        index.insert(1, (1, 1, 2))
        index.freeze(weights=[2.0, 2.0])
        assert list(index.postings([True, False, False], (1,))) == [0, 1]

    def test_distinct_keys(self):
        index = self._build()
        keys = index.distinct_keys([False, True, False])
        assert keys == [(20,)]
        with pytest.raises(StorageError):
            index.distinct_keys([False, False, False])
