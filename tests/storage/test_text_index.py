"""Unit tests for fuzzy token matching (TokenMatcher)."""

import pytest

from repro.core.terms import Resource, TextToken
from repro.errors import StorageError
from repro.storage.text_index import PREDICATE, SUBJECT, TokenMatcher


@pytest.fixture()
def matcher(frozen_small_store):
    return TokenMatcher(frozen_small_store)


class TestConstruction:
    def test_requires_frozen(self, small_store):
        with pytest.raises(StorageError):
            TokenMatcher(small_store)

    def test_phrases_in_slot(self, matcher):
        phrases = [p.norm for p in matcher.phrases_in_slot(PREDICATE)]
        assert "lectured at" in phrases
        assert "won a nobel for" in phrases


class TestExactAndKeyMatches:
    def test_exact_match_scores_one(self, matcher):
        matches = matcher.matches(TextToken("lectured at"), PREDICATE)
        assert matches[0].token == TextToken("lectured at")
        assert matches[0].similarity == 1.0

    def test_same_key_different_surface(self, matcher):
        # 'lectures at' stems to the same key as 'lectured at'.
        matches = matcher.matches(TextToken("lectures at"), PREDICATE)
        assert any(
            m.token == TextToken("lectured at") and m.similarity == pytest.approx(0.95)
            for m in matches
        )

    def test_subsequence_match_attenuated(self, matcher):
        # 'nobel for' ⊂ 'won a nobel for' (key: win nobel for).
        matches = matcher.matches(TextToken("nobel for"), PREDICATE)
        found = [m for m in matches if m.token == TextToken("won a nobel for")]
        assert found
        assert 0.6 <= found[0].similarity < 0.95

    def test_non_contiguous_no_match(self, matcher):
        matches = matcher.matches(TextToken("won for"), PREDICATE)
        assert not any(m.token == TextToken("won a nobel for") for m in matches)

    def test_no_match_returns_empty(self, matcher):
        assert matcher.matches(TextToken("completely unrelated"), PREDICATE) == []

    def test_bad_slot_rejected(self, matcher):
        with pytest.raises(StorageError):
            matcher.matches(TextToken("x"), 5)

    def test_results_sorted_by_similarity(self, matcher):
        matches = matcher.matches(TextToken("lectured at"), PREDICATE)
        sims = [m.similarity for m in matches]
        assert sims == sorted(sims, reverse=True)


class TestResourceMatching:
    def test_token_matches_resource_surface(self, matcher):
        # 'born in' equals bornIn's camel-split surface exactly, so the
        # only attenuation is the resource factor.
        matches = matcher.matches(TextToken("born in"), PREDICATE)
        resource_matches = [m for m in matches if m.token == Resource("bornIn")]
        assert resource_matches
        assert resource_matches[0].similarity == pytest.approx(0.95)

    def test_subject_entity_by_surface(self, matcher):
        matches = matcher.matches(TextToken("albert einstein"), SUBJECT)
        assert any(m.token == Resource("AlbertEinstein") for m in matches)

    def test_resources_disabled(self, frozen_small_store):
        matcher = TokenMatcher(frozen_small_store, include_resources=False)
        matches = matcher.matches(TextToken("born in"), PREDICATE)
        assert not any(isinstance(m.token, Resource) for m in matches)

    def test_phrase_preferred_over_resource_on_tie(self, matcher):
        matches = matcher.matches(TextToken("lectured at"), PREDICATE)
        assert isinstance(matches[0].token, TextToken)
