"""Backend and store close semantics: release resources, fail loudly after.

The mmap-leak fix: ``load_snapshot(map_file=True)`` used to create a mapping
nothing could ever unmap.  ``close()`` now travels engine → store → backend
→ buffer, releasing every retained memoryview and the map itself; any use
after close raises :class:`StorageError` on every backend, in-memory or
mapped.
"""

import pytest

from repro.core.terms import Resource
from repro.core.triples import Triple, TriplePattern
from repro.core.terms import Variable
from repro.errors import StorageError
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.storage.store import TripleStore


def build_store(backend):
    store = TripleStore(backend=backend)
    for i in range(6):
        store.add(Triple(Resource(f"E{i}"), Resource("p"), Resource(f"F{i % 2}")))
    return store.freeze()


@pytest.mark.parametrize("backend", ["columnar", "dict", "sharded"])
class TestBackendClose:
    def test_close_flags_and_idempotence(self, backend):
        store = build_store(backend)
        assert not store.closed and not store.backend.closed
        store.close()
        store.close()
        assert store.closed and store.backend.closed

    def test_lookups_raise_after_close(self, backend):
        store = build_store(backend)
        inner = store.backend
        store.close()
        pattern = TriplePattern(Variable("x"), Resource("p"), Variable("y"))
        with pytest.raises(StorageError):
            store.sorted_ids(pattern)
        with pytest.raises(StorageError):
            store.postings_ids(None, 1, None)
        with pytest.raises(StorageError):
            store.weights()
        with pytest.raises(StorageError):
            store.weight(0)
        with pytest.raises(StorageError):
            inner.postings((False, True, False), (1,))
        with pytest.raises(StorageError):
            inner.slot_ids(0)
        with pytest.raises(StorageError):
            inner.weight(0)
        with pytest.raises(StorageError):
            inner.count(0)
        with pytest.raises(StorageError):
            inner.distinct_keys((False, True, False))

    def test_records_stay_readable(self, backend):
        # Materialised answers keep rendering after close: the distinct
        # records and dictionary are not backend-owned.
        store = build_store(backend)
        record = store.record(0)
        store.close()
        assert store.record(0) is record
        assert store.triple(0).n3()


class TestSnapshotClose:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        path = tmp_path / "store.snap"
        save_snapshot(build_store("columnar"), path)
        return path

    def test_mmap_released_on_close(self, snapshot):
        loaded = load_snapshot(snapshot)
        backend = loaded.backend
        assert backend._buffer is not None
        loaded.close()
        assert backend._buffer is None
        with pytest.raises(StorageError):
            loaded.postings_ids(None, None, None)

    def test_close_with_live_posting_slice_defers_unmap(self, snapshot):
        loaded = load_snapshot(snapshot)
        pattern = TriplePattern(Variable("x"), Resource("p"), Variable("y"))
        live = loaded.sorted_ids(pattern)
        before = list(live)
        loaded.close()  # must not raise despite the exported slice
        assert list(live) == before  # the slice stays valid until GC'd
        with pytest.raises(StorageError):
            loaded.sorted_ids(pattern)

    def test_unmapped_load_closes_too(self, snapshot):
        loaded = load_snapshot(snapshot, map_file=False)
        loaded.close()
        with pytest.raises(StorageError):
            loaded.postings_ids(None, None, None)

    def test_queries_identical_before_close(self, snapshot):
        original = build_store("columnar")
        loaded = load_snapshot(snapshot)
        pattern = TriplePattern(Variable("x"), Resource("p"), Variable("y"))
        assert list(loaded.sorted_ids(pattern)) == list(
            original.sorted_ids(pattern)
        )
        loaded.close()
