"""Snapshot round-trip: freeze → save → mmap-load → byte-identical postings.

The snapshot format's whole contract is *fidelity without re-ingestion*: the
loaded store must be observationally indistinguishable from the one written —
posting bytes, weights, confidences, provenances, answers — while its
permutation arrays are zero-copy views over the mapped file.
"""

import json
import mmap

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import PersistenceError
from repro.storage.index import SIGNATURES
from repro.storage.persistence import load_store
from repro.storage.snapshot import (
    MAGIC,
    is_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.storage.store import TripleStore
from repro.topk.processor import TopKProcessor

X, Y, P = Variable("x"), Variable("y"), Variable("p")


@pytest.fixture()
def snapshot_path(frozen_small_store, tmp_path):
    path = tmp_path / "store.snap"
    save_snapshot(frozen_small_store, path)
    return path


def _all_posting_bytes(store):
    """Posting bytes for every signature and key, plus the scan list."""
    backend = store.backend
    out = {}
    for sig in SIGNATURES:
        bound = [slot in sig for slot in range(3)]
        for key in backend.distinct_keys(bound):
            out[(sig, key)] = bytes(backend.postings(bound, key))
    out[("scan",)] = bytes(backend.postings([False, False, False], ()))
    return out


class TestRoundtripFidelity:
    def test_byte_identical_postings(self, frozen_small_store, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert _all_posting_bytes(loaded) == _all_posting_bytes(frozen_small_store)

    def test_records_survive_exactly(self, frozen_small_store, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert len(loaded) == len(frozen_small_store)
        assert loaded.name == frozen_small_store.name
        for tid in range(len(frozen_small_store)):
            original, reloaded = frozen_small_store.record(tid), loaded.record(tid)
            assert reloaded.triple == original.triple
            assert reloaded.count == original.count
            assert reloaded.confidence == original.confidence  # bit-exact
            assert reloaded.provenances == original.provenances

    def test_weights_identical(self, frozen_small_store, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert list(loaded.weights()) == list(frozen_small_store.weights())
        for tid in range(len(frozen_small_store)):
            assert loaded.weight(tid) == frozen_small_store.weight(tid)
            assert loaded.backend.count(tid) == frozen_small_store.backend.count(tid)

    def test_dictionary_ids_identical(self, frozen_small_store, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert len(loaded.dictionary) == len(frozen_small_store.dictionary)
        for term in frozen_small_store.dictionary:
            assert loaded.dictionary.id_of(term) == (
                frozen_small_store.dictionary.id_of(term)
            )

    def test_identical_topk_answers(self, frozen_small_store, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        queries = [
            "AlbertEinstein ?p ?y",
            "?x bornIn ?y",
            "?x 'lectured at' ?y",
            "?x bornIn ?c . ?c locatedIn ?l",
        ]
        from repro.core.parser import parse_query

        for text in queries:
            query = parse_query(text)
            for k in (1, 3, 10):
                original = TopKProcessor(frozen_small_store).query(query, k)
                reloaded = TopKProcessor(loaded).query(query, k)
                assert [(a.binding, a.score) for a in reloaded] == [
                    (a.binding, a.score) for a in original
                ]

    def test_exotic_confidence_round_trips_bit_exact(self, tmp_path):
        store = TripleStore("exact")
        store.add(
            Triple(Resource("A"), Resource("p"), Resource("B")),
            confidence=0.1234567891,
            count=3,
        )
        store.freeze()
        path = tmp_path / "exact.snap"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.record(0).confidence == 0.1234567891
        assert loaded.weight(0) == store.weight(0)


class TestZeroCopy:
    def test_postings_view_over_mapped_file(self, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        postings = loaded.sorted_ids(TriplePattern(X, Resource("bornIn"), Y))
        assert isinstance(postings, memoryview)
        assert postings.readonly
        assert isinstance(postings.obj, mmap.mmap)

    def test_loaded_store_is_frozen_but_absorbs_live_adds(self, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert loaded.is_frozen
        assert loaded.backend_name == "columnar"
        assert loaded.backend.is_frozen
        # Live ingestion: additions land in the mutable delta segment, the
        # mapped frozen columns stay untouched.
        before = len(loaded)
        loaded.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        assert loaded.delta_size == 1
        assert len(loaded) == before + 1

    def test_eager_load_matches_mapped_load(self, frozen_small_store, snapshot_path):
        mapped = load_snapshot(snapshot_path, map_file=True)
        eager = load_snapshot(snapshot_path, map_file=False)
        assert _all_posting_bytes(mapped) == _all_posting_bytes(eager)
        assert list(mapped.weights()) == list(eager.weights())


class TestFormatSniffing:
    def test_load_store_dispatches_on_magic(self, frozen_small_store, snapshot_path):
        loaded = load_store(snapshot_path)
        assert len(loaded) == len(frozen_small_store)
        assert loaded.backend_name == "columnar"
        assert loaded.is_frozen

    def test_load_store_converts_backend_on_request(self, snapshot_path):
        loaded = load_store(snapshot_path, backend="sharded")
        assert loaded.backend_name == "sharded"
        assert loaded.is_frozen

    def test_snapshot_rejects_freeze_false(self, snapshot_path):
        with pytest.raises(PersistenceError):
            load_store(snapshot_path, freeze=False)

    def test_is_snapshot(self, snapshot_path, tmp_path):
        assert is_snapshot(snapshot_path)
        other = tmp_path / "plain.jsonl"
        other.write_text(json.dumps({"format": "trinit-xkg-jsonl"}) + "\n")
        assert not is_snapshot(other)
        assert not is_snapshot(tmp_path / "missing.snap")


class TestErrors:
    def test_unfrozen_store_rejected(self, small_store, tmp_path):
        with pytest.raises(PersistenceError):
            save_snapshot(small_store, tmp_path / "nope.snap")

    def test_non_columnar_backend_rejected(self, tmp_path):
        store = TripleStore("dictstore", backend="dict")
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        store.freeze()
        with pytest.raises(PersistenceError):
            save_snapshot(store, tmp_path / "nope.snap")

    def test_sharded_store_snapshot_via_convert(self, tmp_path):
        store = TripleStore("shardstore", backend="sharded")
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")), count=2)
        store.freeze()
        path = tmp_path / "converted.snap"
        save_snapshot(store.convert("columnar"), path)
        loaded = load_snapshot(path)
        assert len(loaded) == 1
        assert loaded.record(0).count == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_snapshot(tmp_path / "missing.snap")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(PersistenceError):
            load_snapshot(path)

    def test_truncated_file(self, snapshot_path, tmp_path):
        data = snapshot_path.read_bytes()
        truncated = tmp_path / "trunc.snap"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(PersistenceError):
            load_snapshot(truncated)

    def test_corrupt_header_json(self, snapshot_path):
        data = bytearray(snapshot_path.read_bytes())
        # The header JSON sits at the end; mangle its last byte.
        data[-1] = ord("!")
        snapshot_path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_path)

    def _rewrite_header(self, snapshot_path, mutate):
        import struct

        data = bytearray(snapshot_path.read_bytes())
        (header_offset,) = struct.unpack_from("<Q", data, len(MAGIC))
        header = json.loads(bytes(data[header_offset:]).decode("utf-8"))
        mutate(header)
        snapshot_path.write_bytes(
            bytes(data[:header_offset])
            + json.dumps(header, ensure_ascii=False).encode("utf-8")
        )

    def test_negative_section_offset_rejected(self, snapshot_path):
        self._rewrite_header(
            snapshot_path,
            lambda header: header["sections"].__setitem__("col:s", [-16, 8]),
        )
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_path)

    def test_misaligned_section_length_rejected(self, snapshot_path):
        def shrink(header):
            offset, length = header["sections"]["col:s"]
            header["sections"]["col:s"] = [offset, length - 1]

        self._rewrite_header(snapshot_path, shrink)
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_path)

    def test_foreign_weight_itemsize_rejected(self, snapshot_path):
        self._rewrite_header(
            snapshot_path, lambda header: header.__setitem__("weight_itemsize", 4)
        )
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_path)

    def test_foreign_byteorder_rejected(self, snapshot_path):
        self._rewrite_header(
            snapshot_path,
            lambda header: header.__setitem__(
                "byteorder", "big" if __import__("sys").byteorder == "little" else "little"
            ),
        )
        with pytest.raises(PersistenceError):
            load_snapshot(snapshot_path)

    def test_magic_prefix_only(self):
        assert len(MAGIC) == 8


class TestSnapshotOfSnapshot:
    def test_resave_of_loaded_snapshot_is_faithful(
        self, frozen_small_store, snapshot_path, tmp_path
    ):
        loaded = load_snapshot(snapshot_path)
        second_path = tmp_path / "second.snap"
        save_snapshot(loaded, second_path)
        second = load_snapshot(second_path)
        assert _all_posting_bytes(second) == _all_posting_bytes(frozen_small_store)
        assert list(second.weights()) == list(frozen_small_store.weights())
