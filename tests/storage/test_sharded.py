"""ShardedBackend specifics: partitioning, lazy merged postings, id maps.

Cross-backend observational equivalence lives in test_backends.py and the
id-space equivalence/property suites; this module covers the parts unique
to the segmented composite: the hash partitioning itself, the laziness of
the k-way merge, and the global/local id translation.
"""

import pytest

from repro.core.terms import Resource, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import StorageError
from repro.storage.sharded import DEFAULT_SEGMENTS, MergedPostings, ShardedBackend
from repro.storage.store import TripleStore

X, Y, P = Variable("x"), Variable("y"), Variable("p")


def _store(num_people: int = 40, backend=None) -> TripleStore:
    store = TripleStore(
        "sharded-test", backend=backend if backend is not None else "sharded"
    )
    aff = Resource("affiliation")
    for i in range(num_people):
        person = Resource(f"Person{i}")
        store.add(
            Triple(person, aff, Resource(f"Uni{i % 5}")),
            confidence=0.5 + 0.5 * ((i * 7) % 10) / 10,
            count=1 + i % 3,
        )
        store.add(Triple(person, Resource("type"), Resource("person")))
    return store.freeze()


class TestPartitioning:
    def test_default_segment_count(self):
        assert DEFAULT_SEGMENTS >= 4
        assert ShardedBackend().num_segments == DEFAULT_SEGMENTS

    def test_segments_all_used(self):
        store = _store()
        sizes = store.backend.segment_sizes()
        assert sum(sizes) == len(store)
        assert all(size > 0 for size in sizes)

    def test_partitioning_is_deterministic(self):
        first, second = _store(), _store()
        assert first.backend.segment_sizes() == second.backend.segment_sizes()

    def test_configurable_segment_count(self):
        store = _store(backend=ShardedBackend(8))
        assert store.backend.num_segments == 8
        assert sum(store.backend.segment_sizes()) == len(store)

    def test_at_least_one_segment_required(self):
        with pytest.raises(StorageError):
            ShardedBackend(0)

    def test_single_segment_degenerates_to_columnar_order(self):
        sharded = _store(backend=ShardedBackend(1))
        columnar = _store(backend="columnar")
        for pattern in (TriplePattern(X, Resource("affiliation"), Y),
                        TriplePattern(X, P, Y)):
            assert list(sharded.sorted_ids(pattern)) == list(
                columnar.sorted_ids(pattern)
            )


class TestIdTranslation:
    def test_slot_ids_and_weights_globally_indexed(self):
        sharded = _store()
        columnar = _store(backend="columnar")
        for tid in range(len(sharded)):
            assert sharded.backend.slot_ids(tid) == columnar.backend.slot_ids(tid)
            assert sharded.backend.weight(tid) == columnar.backend.weight(tid)
            assert sharded.backend.count(tid) == columnar.backend.count(tid)


class TestLazyMerge:
    def test_length_known_without_materialisation(self):
        store = _store()
        postings = store.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))
        assert isinstance(postings, MergedPostings)
        assert len(postings) == 40
        assert postings.materialized == 0

    def test_prefix_access_materialises_prefix_only(self):
        store = _store()
        postings = store.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))
        _ = postings[0], postings[1], postings[2]
        assert 3 <= postings.materialized < len(postings)

    def test_full_iteration_matches_indexing(self):
        store = _store()
        postings = store.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))
        iterated = list(postings)
        assert iterated == [postings[i] for i in range(len(postings))]
        assert postings.materialized == len(postings)

    def test_negative_index_and_slice(self):
        store = _store()
        postings = store.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))
        full = list(postings)
        assert postings[-1] == full[-1]
        assert postings[2:5] == tuple(full[2:5])
        assert postings[-3:] == tuple(full[-3:])
        with pytest.raises(IndexError):
            postings[len(postings)]

    def test_merged_order_is_global_score_order(self):
        store = _store()
        postings = store.sorted_ids(TriplePattern(X, Resource("affiliation"), Y))
        weights = store.weights()
        keys = [(-weights[tid], tid) for tid in postings]
        assert keys == sorted(keys)

    def test_scan_is_merged_across_segments(self):
        sharded = _store()
        columnar = _store(backend="columnar")
        scan = TriplePattern(X, P, Y)
        assert list(sharded.sorted_ids(scan)) == list(columnar.sorted_ids(scan))

    def test_merged_postings_are_stable_across_lookups(self):
        store = _store()
        pattern = TriplePattern(X, Resource("affiliation"), Y)
        assert list(store.sorted_ids(pattern)) == list(store.sorted_ids(pattern))
