"""Unit tests for the triple store."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Provenance, Triple, TriplePattern
from repro.errors import StorageError
from repro.storage.store import MAX_PROVENANCES, TripleStore

AE = Resource("AlbertEinstein")
BORN = Resource("bornIn")
ULM = Resource("Ulm")
X, Y = Variable("x"), Variable("y")


class TestLoadPhase:
    def test_add_assigns_ids(self):
        store = TripleStore()
        first = store.add(Triple(AE, BORN, ULM))
        second = store.add(Triple(ULM, Resource("locatedIn"), Resource("Germany")))
        assert first == 0
        assert second == 1
        assert len(store) == 2

    def test_duplicate_accumulates_count(self):
        store = TripleStore()
        store.add(Triple(AE, BORN, ULM))
        same_id = store.add(Triple(AE, BORN, ULM), count=2)
        assert same_id == 0
        assert len(store) == 1
        assert store.record(0).count == 3

    def test_duplicate_keeps_max_confidence(self):
        store = TripleStore()
        store.add(Triple(AE, BORN, ULM), confidence=0.5)
        store.add(Triple(AE, BORN, ULM), confidence=0.9)
        store.add(Triple(AE, BORN, ULM), confidence=0.4)
        assert store.record(0).confidence == 0.9

    def test_provenance_sample_bounded(self):
        store = TripleStore()
        for i in range(MAX_PROVENANCES + 5):
            store.add(
                Triple(AE, BORN, ULM),
                Provenance("openie", f"doc-{i}", "", "reverb"),
            )
        assert len(store.record(0).provenances) == MAX_PROVENANCES

    def test_rejects_bad_confidence(self):
        store = TripleStore()
        with pytest.raises(StorageError):
            store.add(Triple(AE, BORN, ULM), confidence=0.0)
        with pytest.raises(StorageError):
            store.add(Triple(AE, BORN, ULM), confidence=1.5)

    def test_rejects_bad_count(self):
        store = TripleStore()
        with pytest.raises(StorageError):
            store.add(Triple(AE, BORN, ULM), count=0)

    def test_add_after_freeze_lands_in_delta(self):
        store = TripleStore()
        store.add(Triple(AE, BORN, ULM))
        store.freeze()
        tid = store.add(Triple(ULM, BORN, AE))
        assert tid == 1
        assert store.delta_size == 1
        assert len(store) == 2
        assert store.record(tid).triple == Triple(ULM, BORN, AE)

    def test_double_freeze_rejected(self):
        store = TripleStore()
        store.freeze()
        with pytest.raises(StorageError):
            store.freeze()

    def test_contains(self):
        store = TripleStore()
        store.add(Triple(AE, BORN, ULM))
        assert Triple(AE, BORN, ULM) in store
        assert Triple(ULM, BORN, AE) not in store


class TestLookup:
    def test_lookup_before_freeze_rejected(self, small_store):
        with pytest.raises(StorageError):
            small_store.sorted_ids(TriplePattern(X, BORN, Y))

    def test_sorted_ids_by_signature(self, frozen_small_store):
        store = frozen_small_store
        ids = store.sorted_ids(TriplePattern(X, BORN, Y))
        assert len(ids) == 2
        ids = store.sorted_ids(TriplePattern(AE, BORN, Y))
        assert len(ids) == 1

    def test_unknown_constant_empty(self, frozen_small_store):
        ids = frozen_small_store.sorted_ids(
            TriplePattern(Resource("Nobody"), BORN, Y)
        )
        assert list(ids) == []

    def test_scan_returns_everything(self, frozen_small_store):
        ids = frozen_small_store.sorted_ids(TriplePattern(X, Variable("p"), Y))
        assert len(ids) == len(frozen_small_store)

    def test_sorted_by_weight_descending(self, frozen_small_store):
        store = frozen_small_store
        ids = store.sorted_ids(TriplePattern(X, Variable("p"), Y))
        weights = [store.weight(i) for i in ids]
        assert weights == sorted(weights, reverse=True)

    def test_matches_filters_repeated_variables(self):
        store = TripleStore()
        knows = Resource("knows")
        store.add(Triple(AE, knows, AE))
        store.add(Triple(AE, knows, ULM))
        store.freeze()
        self_loops = store.matches(TriplePattern(X, knows, X))
        assert len(self_loops) == 1
        assert self_loops[0].triple.o == AE

    def test_cardinality(self, frozen_small_store):
        assert frozen_small_store.cardinality(TriplePattern(X, BORN, Y)) == 2

    def test_observation_mass(self, frozen_small_store):
        store = frozen_small_store
        pattern = TriplePattern(X, TextToken("lectured at"), Y)
        # 3 observations at 0.8 plus 1 at 0.9
        assert store.observation_mass(pattern) == pytest.approx(3 * 0.8 + 0.9)

    def test_observation_mass_cached(self, frozen_small_store):
        pattern = TriplePattern(X, BORN, Y)
        first = frozen_small_store.observation_mass(pattern)
        second = frozen_small_store.observation_mass(pattern)
        assert first == second

    def test_lookup_exact(self, frozen_small_store):
        record = frozen_small_store.lookup(Triple(AE, BORN, ULM))
        assert record is not None
        assert record.count == 1
        assert frozen_small_store.lookup(Triple(ULM, BORN, AE)) is None


class TestCounts:
    def test_token_vs_kg_split(self, frozen_small_store):
        store = frozen_small_store
        assert store.num_token_triples() == 3
        assert store.num_kg_triples() == len(store) - 3

    def test_total_observations(self, frozen_small_store):
        total = frozen_small_store.total_observations()
        assert total > len(frozen_small_store) - 3  # counts and confidences

    def test_terms_of_kind(self, frozen_small_store):
        tokens = frozen_small_store.terms_of_kind("token")
        assert TextToken("lectured at") in tokens

    def test_record_bad_id(self, frozen_small_store):
        with pytest.raises(StorageError):
            frozen_small_store.record(10_000)


class TestAddAll:
    def test_add_all_returns_ids_in_order(self):
        store = TripleStore()
        locd = Resource("locatedIn")
        ids = store.add_all(
            [
                Triple(AE, BORN, ULM),
                Triple(ULM, locd, Resource("Germany")),
            ]
        )
        assert ids == [0, 1]

    def test_add_all_confidence_and_count_passthrough(self):
        store = TripleStore()
        prov = Provenance("openie", "doc-9", "bulk chunk", "reverb")
        store.add_all(
            [Triple(AE, TextToken("taught at"), ULM)],
            prov,
            confidence=0.7,
            count=3,
        )
        record = store.record(0)
        assert record.confidence == 0.7
        assert record.count == 3
        assert record.provenances == [prov]
        assert record.weight == pytest.approx(2.1)

    def test_add_all_duplicates_accumulate(self):
        store = TripleStore()
        store.add_all([Triple(AE, BORN, ULM), Triple(AE, BORN, ULM)], count=2)
        assert len(store) == 1
        assert store.record(0).count == 4

    def test_add_all_validates_like_add(self):
        store = TripleStore()
        with pytest.raises(StorageError):
            store.add_all([Triple(AE, BORN, ULM)], confidence=1.5)
        with pytest.raises(StorageError):
            store.add_all([Triple(AE, BORN, ULM)], count=0)


class TestIdValidation:
    def test_weight_rejects_bad_ids_when_frozen(self, frozen_small_store):
        with pytest.raises(StorageError):
            frozen_small_store.weight(-1)  # UNBOUND sentinel must not wrap
        with pytest.raises(StorageError):
            frozen_small_store.weight(10_000)

    def test_spo_ids_rejects_bad_ids(self, frozen_small_store):
        with pytest.raises(StorageError):
            frozen_small_store.spo_ids(-1)
        with pytest.raises(StorageError):
            frozen_small_store.spo_ids(10_000)
