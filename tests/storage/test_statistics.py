"""Unit tests for store statistics (args(p), context pairs, selectivity)."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import StorageError
from repro.storage.statistics import OBJECT, PREDICATE, SUBJECT, StoreStatistics
from repro.storage.store import TripleStore


@pytest.fixture()
def stats(frozen_small_store):
    return StoreStatistics(frozen_small_store)


class TestConstruction:
    def test_requires_frozen(self, small_store):
        with pytest.raises(StorageError):
            StoreStatistics(small_store)


class TestPredicates:
    def test_predicates_listed(self, stats):
        predicates = stats.predicates()
        assert Resource("bornIn") in predicates
        assert TextToken("lectured at") in predicates

    def test_ordered_by_mass(self, stats):
        predicates = stats.predicates()
        masses = [stats.predicate_mass(p) for p in predicates]
        assert masses == sorted(masses, reverse=True)

    def test_args_shape(self, stats, frozen_small_store):
        args = stats.args(Resource("bornIn"))
        assert len(args) == 2
        decode = frozen_small_store.dictionary.decode
        subjects = {decode(s) for s, _o in args}
        assert subjects == {Resource("AlbertEinstein"), Resource("MarieCurie")}

    def test_args_inverted_flips(self, stats):
        args = stats.args(Resource("bornIn"))
        inverted = stats.args_inverted(Resource("bornIn"))
        assert {(o, s) for s, o in args} == set(inverted)

    def test_args_unknown_predicate_empty(self, stats):
        assert stats.args(Resource("unknownPred")) == frozenset()

    def test_fanout(self, stats):
        assert stats.predicate_fanout(Resource("bornIn")) == 2

    def test_mass_counts_observations(self, stats):
        # 'lectured at': 3 × 0.8 + 1 × 0.9
        assert stats.predicate_mass(TextToken("lectured at")) == pytest.approx(3.3)


class TestContextPairs:
    def test_subject_context(self, stats, frozen_small_store):
        pairs = stats.context_pairs(Resource("AlbertEinstein"), SUBJECT)
        # bornIn, affiliation, bornOn, 'lectured at', 'won a nobel for'
        assert len(pairs) == 5

    def test_object_context(self, stats):
        pairs = stats.context_pairs(Resource("Ulm"), OBJECT)
        assert len(pairs) == 1

    def test_unknown_term_empty(self, stats):
        assert stats.context_pairs(Resource("Nobody"), SUBJECT) == frozenset()

    def test_bad_slot_rejected(self, stats):
        with pytest.raises(StorageError):
            stats.context_pairs(Resource("Ulm"), 3)

    def test_terms_in_slot_filtered_by_kind(self, stats):
        tokens = stats.terms_in_slot(PREDICATE, kind="token")
        assert TextToken("lectured at") in tokens
        assert all(t.kind == "token" for t in tokens)


class TestSelectivity:
    def test_pattern_selectivity(self, stats, frozen_small_store):
        x, y = Variable("x"), Variable("y")
        pattern = TriplePattern(x, Resource("bornIn"), y)
        expected = 2 / len(frozen_small_store)
        assert stats.pattern_selectivity(pattern) == pytest.approx(expected)

    def test_type_instances(self):
        store = TripleStore()
        t = Resource("type")
        store.add(Triple(Resource("Ulm"), t, Resource("city")))
        store.add(Triple(Resource("Munich"), t, Resource("city")))
        store.add(Triple(Resource("Germany"), t, Resource("country")))
        store.freeze()
        stats = StoreStatistics(store)
        cities = stats.type_instances(Resource("city"), t)
        assert set(cities) == {Resource("Ulm"), Resource("Munich")}
