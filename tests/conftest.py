"""Shared fixtures.

Expensive artifacts (the tiny evaluation harness, the paper engine) are
session-scoped: they are deterministic and read-only for tests, so building
them once keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.terms import Literal, Resource, TextToken, Variable
from repro.core.triples import Provenance, Triple
from repro.eval.harness import EvalHarness
from repro.kg.paper_example import paper_engine, paper_rules, paper_store
from repro.storage.store import TripleStore


@pytest.fixture(scope="session")
def paper_store_fixture() -> TripleStore:
    return paper_store()


@pytest.fixture(scope="session")
def paper_engine_fixture():
    return paper_engine()


@pytest.fixture(scope="session")
def tiny_harness() -> EvalHarness:
    harness = EvalHarness("tiny")
    # Touch the expensive cached properties once.
    _ = harness.engine
    return harness


@pytest.fixture()
def small_store() -> TripleStore:
    """A hand-built store with KG facts, token triples and duplicates."""
    store = TripleStore("test")
    ae = Resource("AlbertEinstein")
    mc = Resource("MarieCurie")
    store.add(Triple(ae, Resource("bornIn"), Resource("Ulm")))
    store.add(Triple(mc, Resource("bornIn"), Resource("Warsaw")))
    store.add(Triple(Resource("Ulm"), Resource("locatedIn"), Resource("Germany")))
    store.add(Triple(Resource("Warsaw"), Resource("locatedIn"), Resource("Poland")))
    store.add(Triple(ae, Resource("affiliation"), Resource("IAS")))
    store.add(Triple(mc, Resource("affiliation"), Resource("Sorbonne")))
    store.add(Triple(ae, Resource("bornOn"), Literal("1879-03-14")))
    prov = Provenance("openie", "doc-1", "Einstein lectured at Princeton", "reverb")
    store.add(
        Triple(ae, TextToken("lectured at"), Resource("PrincetonUniversity")),
        prov,
        confidence=0.8,
        count=3,
    )
    store.add(
        Triple(mc, TextToken("lectured at"), Resource("Sorbonne")),
        Provenance("openie", "doc-2", "Curie lectured at the Sorbonne", "reverb"),
        confidence=0.9,
    )
    store.add(
        Triple(ae, TextToken("won a nobel for"), TextToken("the photoelectric effect")),
        Provenance("openie", "doc-3", "", "reverb"),
        confidence=0.7,
        count=2,
    )
    return store


@pytest.fixture()
def frozen_small_store(small_store) -> TripleStore:
    return small_store.freeze()


# Convenience term constructors used across test modules.
@pytest.fixture()
def x():
    return Variable("x")


@pytest.fixture()
def y():
    return Variable("y")
