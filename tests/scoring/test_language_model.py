"""Unit tests for the query-likelihood pattern scorer."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.errors import ScoringError
from repro.scoring.language_model import PatternScorer, ScoringConfig
from repro.storage.store import TripleStore

X, Y = Variable("x"), Variable("y")
BORN = Resource("bornIn")


class TestConfig:
    def test_smoothing_bounds(self):
        with pytest.raises(ScoringError):
            ScoringConfig(smoothing=1.0)
        with pytest.raises(ScoringError):
            ScoringConfig(smoothing=-0.1)
        assert ScoringConfig(smoothing=0.0).smoothing == 0.0

    def test_requires_frozen(self, small_store):
        with pytest.raises(ScoringError):
            PatternScorer(small_store)


class TestScores:
    def test_probabilities_sum_to_one_unsmoothed(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store, ScoringConfig(smoothing=0.0))
        pattern = TriplePattern(X, BORN, Y)
        total = sum(
            scorer.score(pattern, record)
            for record in frozen_small_store.matches(pattern)
        )
        assert total == pytest.approx(1.0)

    def test_scores_in_unit_interval(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store)
        for pattern in (
            TriplePattern(X, BORN, Y),
            TriplePattern(X, TextToken("lectured at"), Y),
            TriplePattern(X, Variable("p"), Y),
        ):
            for record in frozen_small_store.matches(pattern):
                assert 0.0 < scorer.score(pattern, record) <= 1.0

    def test_tf_effect(self, frozen_small_store):
        """More observations → higher score for the same pattern."""
        scorer = PatternScorer(frozen_small_store)
        pattern = TriplePattern(X, TextToken("lectured at"), Y)
        matches = frozen_small_store.matches(pattern)
        heavier = max(matches, key=lambda r: r.weight)
        lighter = min(matches, key=lambda r: r.weight)
        assert scorer.score(pattern, heavier) > scorer.score(pattern, lighter)

    def test_idf_effect(self, frozen_small_store):
        """The same triple scores higher under a more selective pattern."""
        scorer = PatternScorer(frozen_small_store, ScoringConfig(smoothing=0.0))
        ae = Resource("AlbertEinstein")
        record = frozen_small_store.lookup(Triple(ae, BORN, Resource("Ulm")))
        broad = TriplePattern(X, BORN, Y)        # 2 matches
        narrow = TriplePattern(ae, BORN, Y)       # 1 match
        assert scorer.score(narrow, record) > scorer.score(broad, record)

    def test_fully_bound_pattern_scores_near_one(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store)
        ae = Resource("AlbertEinstein")
        record = frozen_small_store.lookup(Triple(ae, BORN, Resource("Ulm")))
        pattern = TriplePattern(ae, BORN, Resource("Ulm"))
        assert scorer.score(pattern, record) >= 0.9

    def test_smoothing_shifts_mass_to_collection(self, frozen_small_store):
        plain = PatternScorer(frozen_small_store, ScoringConfig(smoothing=0.0))
        smooth = PatternScorer(frozen_small_store, ScoringConfig(smoothing=0.5))
        pattern = TriplePattern(X, BORN, Y)
        record = frozen_small_store.matches(pattern)[0]
        assert smooth.score(pattern, record) < plain.score(pattern, record)

    def test_max_score_is_first_posting(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store)
        pattern = TriplePattern(X, TextToken("lectured at"), Y)
        scores = [
            scorer.score(pattern, record)
            for record in frozen_small_store.matches(pattern)
        ]
        assert scorer.max_score(pattern) == pytest.approx(max(scores))

    def test_max_score_empty_pattern(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store)
        assert scorer.max_score(TriplePattern(X, Resource("nope"), Y)) == 0.0

    def test_scored_matches_descending(self, frozen_small_store):
        scorer = PatternScorer(frozen_small_store)
        pattern = TriplePattern(X, Variable("p"), Y)
        scores = [s for s, _r in scorer.scored_matches(pattern)]
        assert scores == sorted(scores, reverse=True)
