"""Unit tests for answer aggregation (max over derivations)."""

import pytest

from repro.core.results import Derivation, binding_key
from repro.core.terms import Resource, Variable
from repro.errors import ScoringError
from repro.scoring.answer_scoring import AnswerAggregator, combine_pattern_scores

X = Variable("x")
EMPTY = Derivation(matches=())


def key_for(name: str):
    return binding_key({X: Resource(name)})


class TestCombine:
    def test_product(self):
        assert combine_pattern_scores([0.5, 0.4]) == pytest.approx(0.2)

    def test_rewriting_weight(self):
        assert combine_pattern_scores([0.5], 0.8) == pytest.approx(0.4)

    def test_empty_is_weight(self):
        assert combine_pattern_scores([], 0.7) == pytest.approx(0.7)

    def test_rejects_out_of_range(self):
        with pytest.raises(ScoringError):
            combine_pattern_scores([1.5])
        with pytest.raises(ScoringError):
            combine_pattern_scores([-0.1])

    def test_result_in_unit_interval(self):
        assert 0.0 <= combine_pattern_scores([1.0, 1.0], 1.0) <= 1.0


class TestAggregator:
    def test_max_over_derivations(self):
        agg = AnswerAggregator()
        agg.add(key_for("A"), 0.3, EMPTY)
        agg.add(key_for("A"), 0.7, EMPTY)
        agg.add(key_for("A"), 0.5, EMPTY)
        answers = agg.ranked_answers()
        assert len(answers) == 1
        assert answers[0].score == 0.7
        assert answers[0].num_derivations == 3

    def test_best_derivation_kept(self):
        agg = AnswerAggregator()
        weak = Derivation(matches=(), rewriting_weight=0.3)
        strong = Derivation(matches=(), rewriting_weight=0.9)
        agg.add(key_for("A"), 0.3, weak)
        agg.add(key_for("A"), 0.9, strong)
        assert agg.ranked_answers()[0].derivation is strong

    def test_add_returns_best_known(self):
        agg = AnswerAggregator()
        assert agg.add(key_for("A"), 0.3, EMPTY) == 0.3
        assert agg.add(key_for("A"), 0.1, EMPTY) == 0.3
        assert agg.add(key_for("A"), 0.8, EMPTY) == 0.8

    def test_ranking_deterministic_on_ties(self):
        agg = AnswerAggregator()
        agg.add(key_for("B"), 0.5, EMPTY)
        agg.add(key_for("A"), 0.5, EMPTY)
        names = [a.value("x").lexical() for a in agg.ranked_answers()]
        assert names == ["A", "B"]  # lexical tie-break

    def test_limit(self):
        agg = AnswerAggregator()
        for i in range(10):
            agg.add(key_for(f"E{i}"), i / 10, EMPTY)
        assert len(agg.ranked_answers(limit=3)) == 3

    def test_contains_and_len(self):
        agg = AnswerAggregator()
        agg.add(key_for("A"), 0.5, EMPTY)
        assert key_for("A") in agg
        assert key_for("B") not in agg
        assert len(agg) == 1

    def test_best_score_lookup(self):
        agg = AnswerAggregator()
        assert agg.best_score(key_for("A")) is None
        agg.add(key_for("A"), 0.4, EMPTY)
        assert agg.best_score(key_for("A")) == 0.4
