"""Integration tests: the HTTP/SSE surface against a real engine.

The acceptance spine of the serve subsystem: concurrent HTTP clients get
SSE-streamed answers byte-identical to direct ``engine.ask`` prefixes, a
repeated query is a cache hit (observable via ``/metrics``), live ingest
changes the snapshot identity so nothing stale is ever served, and
overload beyond the admission bound sheds 429/503 without deadlocking
the engine pool.  The whole directory runs under both
``TRINIT_EXECUTOR_KIND=thread`` and ``=process`` in CI.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import QueryService, ServeClient, ServeConfig
from repro.serve.client import ServeError
from repro.serve.http import serialize_answer

from conftest import open_engine

#: A query with enough answers to paginate several SSE batches.
WIDE_QUERY = "?x ?p ?y"
NARROW_QUERY = "?x bornIn ?y"


def reference_answers(snapshot_dir, query: str, k: int) -> list[dict]:
    """Direct ``engine.ask`` prefix, serialized exactly like the wire."""
    with open_engine(snapshot_dir) as engine:
        return [
            serialize_answer(answer, rank)
            for rank, answer in enumerate(engine.ask(query, k=k), start=1)
        ]


class TestHealthz:
    def test_names_the_exact_data_served(self, client, service, snapshot_dir):
        health = client.healthz()
        assert health["status"] == "ok"
        assert str(snapshot_dir) in health["snapshot"]
        assert "@gen0+delta0" in health["snapshot"]
        assert health["generation"] == 0
        assert health["delta"] == {"size": 0, "version": 0}
        assert health["backend"] == "sharded"
        assert health["executor_kind"] == service.engine.executor_kind
        assert health["triples"] > 0


class TestQueryRoute:
    def test_answers_byte_identical_to_direct_ask(self, client, snapshot_dir):
        for query, k in ((NARROW_QUERY, 5), (WIDE_QUERY, 12)):
            payload = client.query(query, k=k)
            assert payload["answers"] == reference_answers(snapshot_dir, query, k)
            assert payload["cached"] is False
            assert payload["k"] == k

    def test_repeat_is_a_cache_hit_observable_in_metrics(self, client):
        before = client.metrics()["cache"]
        first = client.query(NARROW_QUERY, k=5)
        second = client.query(NARROW_QUERY, k=5)
        after = client.metrics()["cache"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert after["hits"] == before["hits"] + 1
        assert second["answers"] == first["answers"]
        assert second["stats"] == first["stats"]  # served, not recomputed

    def test_normalized_query_variants_share_an_entry(self, client):
        client.query("?x bornIn ?y", k=5)
        variant = client.query("SELECT ?x ?y WHERE ?x   bornIn   ?y", k=5)
        assert variant["cached"] is True

    def test_different_k_is_a_different_entry(self, client):
        client.query(NARROW_QUERY, k=5)
        other = client.query(NARROW_QUERY, k=6)
        assert other["cached"] is False

    def test_query_stats_aggregate_into_metrics(self, client):
        client.query(WIDE_QUERY, k=10)
        document = client.metrics()
        assert document["query_stats"]["sorted_accesses"] > 0
        assert document["query_stats"]["segments_touched"] > 0
        assert document["answers_streamed"] >= 10

    def test_bad_query_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.query("?x bornIn")  # two terms: not a triple pattern
        assert info.value.status == 400

    def test_missing_body_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client._request("POST", "/query")
        assert info.value.status == 400

    def test_bad_k_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.query(NARROW_QUERY, k=0)
        assert info.value.status == 400


class TestStreamRoute:
    def test_sse_batches_concatenate_to_direct_ask_prefix(
        self, client, snapshot_dir
    ):
        reference = reference_answers(snapshot_dir, WIDE_QUERY, 30)
        first = client.stream(WIDE_QUERY, n=10)
        assert first.meta["query"].endswith("?x ?p ?y")
        assert first.session
        second = client.resume(first.session, n=10)
        third = client.resume(first.session, n=10)
        got = first.answers + second.answers + third.answers
        assert got == reference[: len(got)]
        assert [a["rank"] for a in got] == list(range(1, len(got) + 1))
        assert second.meta["emitted"] == len(first.answers)

    def test_end_event_reports_exhaustion(self, client):
        batch = client.stream(NARROW_QUERY, n=200)
        assert batch.end is not None
        assert batch.exhausted
        resumed = client.resume(batch.session, n=5)
        assert resumed.answers == []
        assert resumed.exhausted

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServeError) as info:
            client.resume("deadbeefdeadbeef", n=3)
        assert info.value.status == 404

    def test_missing_q_and_session_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client._request("GET", "/stream?n=3")
        assert info.value.status == 400

    def test_sessions_evicted_past_bound(self, engine):
        config = ServeConfig(port=0, max_sessions=2)
        with QueryService(engine, config) as service:
            client = ServeClient(service.host, service.port)
            first = client.stream(WIDE_QUERY, n=2)
            client.stream(NARROW_QUERY, n=2)
            client.stream(WIDE_QUERY, n=2)
            document = client.metrics()
            assert document["admission"]["sessions"] == 2
            assert document["sessions"]["evicted"] == 1
            with pytest.raises(ServeError) as info:
                client.resume(first.session, n=2)  # the LRU victim
            assert info.value.status == 404

    def test_stream_stats_flow_into_metrics(self, client):
        batch = client.stream(WIDE_QUERY, n=8)
        assert batch.end["stats"]["answers_emitted"] == len(batch.answers)
        document = client.metrics()
        assert document["sessions"]["created"] >= 1
        assert document["answers_streamed"] >= len(batch.answers)


class TestIngestRoute:
    def test_ingest_is_visible_to_the_next_query(self, client):
        health = client.healthz()
        result = client.ingest(
            [["Newton", "bornIn", "Woolsthorpe"]], confidence=0.9
        )
        assert result["ingested"] == 1
        assert result["delta_size"] == 1
        assert result["snapshot"] != health["snapshot"]
        payload = client.query("?x bornIn Woolsthorpe", k=3)
        assert payload["cached"] is False
        assert {"?x": "Newton"} in [a["binding"] for a in payload["answers"]]

    def test_ingest_invalidates_by_identity_change(self, client):
        first = client.query(NARROW_QUERY, k=4)
        assert client.query(NARROW_QUERY, k=4)["cached"] is True
        client.ingest([["Leibniz", "bornIn", "Leipzig"]])
        recomputed = client.query(NARROW_QUERY, k=4)
        assert recomputed["cached"] is False
        assert first["snapshot"] != recomputed["snapshot"]

    def test_dict_rows_and_quoted_tokens(self, client):
        result = client.ingest(
            [{"s": "Euler", "p": "'taught at'", "o": "StPetersburg"}],
            confidence=0.7,
        )
        assert result["ingested"] == 1
        payload = client.query("?x 'taught at' StPetersburg", k=3)
        assert {"?x": "Euler"} in [a["binding"] for a in payload["answers"]]

    def test_variable_in_statement_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.ingest([["?x", "bornIn", "Ulm"]])
        assert info.value.status == 400

    def test_bad_confidence_is_400(self, client):
        with pytest.raises(ServeError) as info:
            client.ingest([["A", "b", "C"]], confidence=7.0)
        assert info.value.status == 400

    def test_compaction_flushes_the_cache_at_the_quiet_point(
        self, snapshot_dir
    ):
        engine = open_engine(snapshot_dir, compaction_threshold=6)
        config = ServeConfig(port=0)
        with QueryService(engine, config, owns_engine=True) as service:
            client = ServeClient(service.host, service.port)
            client.query(NARROW_QUERY, k=4)
            assert client.query(NARROW_QUERY, k=4)["cached"] is True
            rows = [[f"Fresh{i}", "bornIn", f"E{i % 5}"] for i in range(8)]
            client.ingest(rows, confidence=0.5)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                health = client.healthz()
                # The flush listeners run just after the swap publishes
                # the new generation, so poll for the flush itself too —
                # reading metrics in that window is not a failure.
                if (
                    health["generation"] >= 1
                    and health["delta"]["size"] == 0
                    and client.metrics()["cache"]["flushes"] >= 1
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("compaction did not land within the deadline")
            document = client.metrics()
            assert document["cache"]["flushes"] >= 1
            assert "gen1" in client.healthz()["snapshot"]
            # the grown store serves the new data from frozen storage
            payload = client.query("?x bornIn E1", k=20)
            assert {"?x": "Fresh1"} in [a["binding"] for a in payload["answers"]]


class TestAdmissionOverHttp:
    def test_burst_sheds_429_without_deadlocking(self, snapshot_dir):
        engine = open_engine(snapshot_dir)
        direct_ask = engine.ask
        gate = threading.Event()

        def gated_ask(query, k=None):
            gate.wait(10.0)
            return direct_ask(query, k)

        engine.ask = gated_ask
        config = ServeConfig(
            port=0, max_concurrency=1, queue_depth=1,
            request_timeout=10.0, cache_size=0,
        )
        with QueryService(engine, config, owns_engine=True) as service:
            client = ServeClient(service.host, service.port)
            statuses: list[int] = []
            lock = threading.Lock()

            def fire(i: int):
                try:
                    client.query(f"?x bornIn E{i}", k=3)  # no cache overlap
                    with lock:
                        statuses.append(200)
                except ServeError as error:
                    with lock:
                        statuses.append(error.status)

            first = threading.Thread(target=fire, args=(0,))
            first.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.metrics()["admission"]["executing"] == 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("first request never reached the engine")
            # Slot held: one of these queues, the other four shed 429.
            rest = [
                threading.Thread(target=fire, args=(i,)) for i in range(1, 6)
            ]
            for thread in rest:
                thread.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with lock:
                    if statuses.count(429) == 4:
                        break
                time.sleep(0.01)
            gate.set()
            for thread in (first, *rest):
                thread.join(timeout=30)
            assert sorted(statuses) == [200, 200, 429, 429, 429, 429]
            assert client.metrics()["admission"]["shed_queue_full"] == 4
            # no deadlock: the slot cycle still answers fresh queries
            engine.ask = direct_ask
            assert client.query(WIDE_QUERY, k=2)["answers"]

    def test_slow_request_times_out_503_and_slot_recovers(self, snapshot_dir):
        engine = open_engine(snapshot_dir)
        direct_ask = engine.ask
        block = threading.Event()

        def stuck_ask(query, k=None):
            block.wait(5.0)
            return direct_ask(query, k)

        engine.ask = stuck_ask
        config = ServeConfig(
            port=0, max_concurrency=1, queue_depth=2, request_timeout=0.3
        )
        with QueryService(engine, config, owns_engine=True) as service:
            client = ServeClient(service.host, service.port)
            with pytest.raises(ServeError) as info:
                client.query(NARROW_QUERY, k=3)
            assert info.value.status == 503
            document = client.metrics()
            assert document["admission"]["shed_timeout"] >= 1
            assert document["admission"]["orphaned"] >= 1
            engine.ask = direct_ask
            block.set()  # let the orphan finish and return its slot
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.metrics()["admission"]["executing"] == 0:
                    break
                time.sleep(0.05)
            assert client.query(NARROW_QUERY, k=3)["answers"]


class TestConcurrentClients:
    def test_mixed_traffic_byte_identical_per_client(
        self, service, snapshot_dir
    ):
        """Eight clients interleave /query and /stream; every answer
        matches the direct-ask reference for its query."""
        references = {
            query: reference_answers(snapshot_dir, query, 24)
            for query in (WIDE_QUERY, NARROW_QUERY, "?x locatedIn ?y")
        }
        errors: list[BaseException] = []

        def hammer(worker: int):
            try:
                client = ServeClient(service.host, service.port)
                queries = list(references)
                query = queries[worker % len(queries)]
                expected = references[query]
                payload = client.query(query, k=12)
                assert payload["answers"] == expected[:12]
                batch = client.stream(query, n=6)
                rest = client.resume(batch.session, n=6)
                got = batch.answers + rest.answers
                assert got == expected[: len(got)]
            except BaseException as exc:  # noqa: BLE001 - collected for report
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]


class TestProtocolEdges:
    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as info:
            client._request("GET", "/query")
        assert info.value.status == 405

    def test_bad_json_body_is_400(self, client, service):
        import http.client as http_client

        connection = http_client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/query", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_metrics_prometheus_exposition(self, client):
        client.query(NARROW_QUERY, k=3)
        text = client.metrics(format="prometheus")
        assert "# TYPE trinit_requests_total counter" in text
        assert 'trinit_requests_total{route="query",status="200"}' in text
        assert "trinit_cache{" in text
        assert "trinit_admission{" in text


class TestKeepAlive:
    def _get(self, connection, path):
        connection.request("GET", path)
        response = connection.getresponse()
        header = response.getheader("Connection", "")
        response.read()
        return response.status, header.strip().lower()

    def test_connection_reused_across_requests(self, service):
        import http.client as http_client

        connection = http_client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            sock = None
            for _ in range(5):
                status, header = self._get(connection, "/healthz")
                assert status == 200
                assert header == "keep-alive"
                if sock is None:
                    sock = connection.sock
                else:  # same socket the whole way: no reconnects
                    assert connection.sock is sock
        finally:
            connection.close()

    def test_request_budget_closes_connection(self, engine):
        import http.client as http_client

        config = ServeConfig(port=0, keepalive_requests=2)
        with QueryService(engine, config, owns_engine=False) as service:
            connection = http_client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                _status, header = self._get(connection, "/healthz")
                assert header == "keep-alive"
                _status, header = self._get(connection, "/healthz")
                assert header == "close"  # budget spent — server says so
            finally:
                connection.close()

    def test_idle_timeout_closes_connection(self, engine):
        import http.client as http_client

        config = ServeConfig(port=0, keepalive_idle=0.2)
        with QueryService(engine, config, owns_engine=False) as service:
            connection = http_client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                _status, header = self._get(connection, "/healthz")
                assert header == "keep-alive"
                time.sleep(0.7)  # past the idle bound: server closed it
                with pytest.raises(
                    (ConnectionError, http_client.HTTPException, OSError)
                ):
                    self._get(connection, "/healthz")
            finally:
                connection.close()

    def test_http10_defaults_to_close(self, service):
        import socket

        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
            head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
            assert "connection: close" in head

    def test_client_reuses_and_recovers_stale_socket(self, engine):
        config = ServeConfig(port=0, keepalive_idle=0.2)
        with QueryService(engine, config, owns_engine=False) as service:
            with ServeClient(service.host, service.port) as client:
                client.healthz()
                kept = client._connection
                assert kept is not None  # connection parked for reuse
                client.healthz()
                assert client._connection is kept  # and actually reused
                time.sleep(0.7)  # server's idle reaper closes the socket
                health = client.healthz()  # invalidate + retry once
                assert health["status"] == "ok"

    def test_sse_response_drops_the_connection(self, client):
        client.healthz()
        assert client._connection is not None
        batch = client.stream(NARROW_QUERY, n=3)
        assert len(batch.answers) == 3
        # SSE is EOF-framed: the server closed, nothing parked for reuse.
        assert client._connection is None
        resumed = client.resume(batch.session, n=2)
        assert [a["rank"] for a in resumed.answers] == [4, 5]
