"""Fixtures for the query-service suite.

Every service test runs against a real engine over a **directory
snapshot** (the layout the process executor needs), honoring
``TRINIT_EXECUTOR_KIND`` like the rest of the suite — CI runs this
directory under both ``thread`` and ``process``.  Rule mining is off:
these tests exercise the network surface, not relaxation.
"""

from __future__ import annotations

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.serve import QueryService, ServeClient, ServeConfig
from repro.storage.snapshot import save_snapshot
from repro.storage.store import TripleStore

NO_MINING = dict(mine_arg_overlap=False, mine_chains=False, mine_inversions=False)

PREDICATES = ["bornIn", "livesIn", "locatedIn", "type"]

#: Deterministic seed world: enough rows that top-k queries paginate.
SEED_ROWS = [
    (
        f"E{i % 13}",
        PREDICATES[i % 4],
        f"E{(i * 7 + 3) % 13}",
        0.05 + (i % 37) / 40,
    )
    for i in range(160)
]


def build_seed_store() -> TripleStore:
    store = TripleStore("serve", backend="sharded")
    for s, p, o, conf in SEED_ROWS:
        store.add(Triple(Resource(s), Resource(p), Resource(o)), confidence=conf)
    return store.freeze()


@pytest.fixture()
def snapshot_dir(tmp_path):
    store = build_seed_store()
    path = tmp_path / "serve.snapd"
    save_snapshot(store, path)
    store.close()
    return path


def open_engine(snapshot_dir, **overrides) -> TriniT:
    config = dict(parallelism=2, **NO_MINING)
    config.update(overrides)
    return TriniT.open(snapshot_dir, config=EngineConfig(**config))


@pytest.fixture()
def engine(snapshot_dir):
    engine = open_engine(snapshot_dir)
    yield engine
    if not engine.closed:
        engine.close()


@pytest.fixture()
def service(engine):
    service = QueryService(engine, ServeConfig(port=0), owns_engine=False)
    service.start()
    yield service
    service.close()


@pytest.fixture()
def client(service):
    return ServeClient(service.host, service.port)
