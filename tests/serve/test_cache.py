"""Unit tests for the LRU+TTL result cache."""

import pytest

from repro.serve.cache import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(4, None)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_past_bound_is_lru_order(self):
        cache = ResultCache(2, None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touches a: b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(2, None)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, a newest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_zero_entries_disables(self):
        cache = ResultCache(0, None)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ResultCache(-1)
        with pytest.raises(ValueError):
            ResultCache(4, ttl=0)


class TestTTL:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert cache.misses == 1

    def test_ttl_none_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(4, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1


class TestFlush:
    def test_flush_drops_everything_and_counts(self):
        cache = ResultCache(8, None)
        for key in "abc":
            cache.put(key, key)
        assert cache.flush() == 3
        assert len(cache) == 0
        assert cache.flushes == 1 and cache.flushed_entries == 3
        assert cache.get("a") is None

    def test_stats_document(self):
        cache = ResultCache(8, None)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_ratio"] == pytest.approx(0.5)
