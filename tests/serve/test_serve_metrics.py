"""Unit tests for the metrics surface (rings, QueryStats aggregation,
JSON + Prometheus rendering)."""

import pytest

from repro.core.results import QueryStats
from repro.serve.metrics import LatencyRing, ServerMetrics


class TestLatencyRing:
    def test_empty_percentile_is_none(self):
        ring = LatencyRing(8)
        assert ring.percentile(0.5) is None
        assert ring.summary()["p50_ms"] is None

    def test_percentiles_over_known_values(self):
        ring = LatencyRing(100)
        for ms in range(1, 101):  # 1..100 ms
            ring.observe(ms / 1000)
        assert ring.percentile(0.50) == pytest.approx(0.050, abs=0.002)
        assert ring.percentile(0.95) == pytest.approx(0.095, abs=0.002)
        assert ring.percentile(0.99) == pytest.approx(0.099, abs=0.002)

    def test_ring_keeps_most_recent(self):
        ring = LatencyRing(4)
        for value in (1.0, 1.0, 1.0, 1.0, 0.001, 0.001, 0.001, 0.001):
            ring.observe(value)
        assert ring.percentile(0.99) == pytest.approx(0.001)
        assert ring.count == 8  # cumulative count survives wraparound

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            LatencyRing(0)


class TestServerMetrics:
    def test_request_counting_by_route_and_status(self):
        metrics = ServerMetrics()
        metrics.observe_request("query", 200, 0.01)
        metrics.observe_request("query", 200, 0.02)
        metrics.observe_request("query", 429, 0.0001)
        document = metrics.snapshot()
        assert document["requests"]["query:200"] == 2
        assert document["requests"]["query:429"] == 1
        # sheds do not pollute the latency ring
        assert document["latency"]["query"]["count"] == 2

    def test_query_stats_merge_accumulates(self):
        metrics = ServerMetrics()
        metrics.record_query_stats(QueryStats(sorted_accesses=5, delta_hits=2))
        metrics.record_query_stats(QueryStats(sorted_accesses=3, posting_pulls=7))
        document = metrics.snapshot()
        assert document["query_stats"]["sorted_accesses"] == 8
        assert document["query_stats"]["delta_hits"] == 2
        assert document["query_stats"]["posting_pulls"] == 7

    def test_scrape_window_is_diff_since_last_snapshot(self):
        metrics = ServerMetrics()
        metrics.record_query_stats(QueryStats(sorted_accesses=5))
        first = metrics.snapshot()
        assert first["query_stats_window"]["sorted_accesses"] == 5
        metrics.record_query_stats(QueryStats(sorted_accesses=2))
        second = metrics.snapshot()
        assert second["query_stats"]["sorted_accesses"] == 7
        assert second["query_stats_window"]["sorted_accesses"] == 2
        third = metrics.snapshot()
        assert third["query_stats_window"]["sorted_accesses"] == 0

    def test_session_events(self):
        metrics = ServerMetrics()
        metrics.count_session("created")
        metrics.count_session("resumed")
        metrics.count_session("evicted")
        metrics.count_session("created")
        document = metrics.snapshot()
        assert document["sessions"] == {"created": 2, "resumed": 1, "evicted": 1}

    def test_prometheus_rendering(self):
        metrics = ServerMetrics()
        metrics.observe_request("query", 200, 0.015)
        metrics.record_query_stats(QueryStats(sorted_accesses=4, delta_hits=1))
        metrics.count_answers(3)
        text = metrics.render_prometheus(
            cache_stats={"hits": 2, "misses": 1},
            admission_stats={"executing": 0, "shed_queue_full": 5},
        )
        assert '# TYPE trinit_requests_total counter' in text
        assert 'trinit_requests_total{route="query",status="200"} 1' in text
        assert 'trinit_query_stats_total{counter="sorted_accesses"} 4' in text
        assert 'trinit_query_stats_total{counter="delta_hits"} 1' in text
        assert 'trinit_cache{counter="hits"} 2' in text
        assert 'trinit_admission{counter="shed_queue_full"} 5' in text
        assert 'trinit_answers_streamed_total 3' in text
        assert text.endswith("\n")

    def test_prometheus_latency_quantiles(self):
        metrics = ServerMetrics()
        for _ in range(10):
            metrics.observe_request("stream", 200, 0.25)
        text = metrics.render_prometheus()
        assert (
            'trinit_request_latency_seconds{route="stream",quantile="0.5"} 0.25'
            in text
        )
