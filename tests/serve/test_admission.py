"""Unit tests for the admission controller (pure asyncio, no HTTP)."""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.admission import AdmissionController, Overloaded


def run(coroutine):
    return asyncio.run(coroutine)


class TestAcquire:
    def test_admits_up_to_concurrency(self):
        async def scenario():
            controller = AdmissionController(2, 0, timeout=None)
            await controller.acquire(None)
            await controller.acquire(None)
            assert controller.executing == 2
            controller.release()
            controller.release()
            assert controller.executing == 0

        run(scenario())

    def test_sheds_429_when_queue_full(self):
        async def scenario():
            controller = AdmissionController(1, 0, timeout=None)
            await controller.acquire(None)  # slot taken, queue_depth=0
            with pytest.raises(Overloaded) as info:
                await controller.acquire(None)
            assert info.value.status == 429
            assert info.value.reason == "queue_full"
            assert controller.shed_queue_full == 1
            controller.release()

        run(scenario())

    def test_sheds_503_on_queue_timeout(self):
        async def scenario():
            controller = AdmissionController(1, 4, timeout=None)
            await controller.acquire(None)
            with pytest.raises(Overloaded) as info:
                await controller.acquire(0.05)
            assert info.value.status == 503
            assert info.value.reason == "timeout"
            assert controller.shed_timeout == 1
            assert controller.waiting == 0  # bookkeeping restored
            controller.release()

        run(scenario())

    def test_waiter_proceeds_when_slot_frees(self):
        async def scenario():
            controller = AdmissionController(1, 4, timeout=None)
            await controller.acquire(None)

            async def waiter():
                await controller.acquire(1.0)
                controller.release()
                return "ran"

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            assert controller.waiting == 1
            controller.release()
            assert await task == "ran"

        run(scenario())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 1)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)
        with pytest.raises(ValueError):
            AdmissionController(1, 1, timeout=0)


class TestRun:
    def test_runs_on_executor_and_releases(self):
        async def scenario():
            controller = AdmissionController(2, 2, timeout=5.0)
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(2) as pool:
                result = await controller.run(loop, pool, lambda: 40 + 2)
            assert result == 42
            assert controller.executing == 0
            assert controller.admitted == 1

        run(scenario())

    def test_propagates_work_exceptions(self):
        async def scenario():
            controller = AdmissionController(1, 1, timeout=5.0)
            loop = asyncio.get_running_loop()

            def boom():
                raise RuntimeError("kaboom")

            with ThreadPoolExecutor(1) as pool:
                with pytest.raises(RuntimeError):
                    await controller.run(loop, pool, boom)
            assert controller.executing == 0

        run(scenario())

    def test_timeout_orphan_keeps_slot_until_thread_finishes(self):
        """The concurrency bound must count timed-out-but-running work."""

        release_worker = threading.Event()

        async def scenario():
            controller = AdmissionController(1, 0, timeout=None)
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(1) as pool:
                with pytest.raises(Overloaded) as info:
                    await controller.run(
                        loop, pool, release_worker.wait, timeout=0.05
                    )
                assert info.value.status == 503
                assert controller.orphaned == 1
                # The worker still runs: its slot is still held, so the
                # next arrival sheds 429 instead of overcommitting.
                assert controller.executing == 1
                with pytest.raises(Overloaded) as second:
                    await controller.acquire(None)
                assert second.value.status == 429
                release_worker.set()
                deadline = time.monotonic() + 5.0
                while controller.executing and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                assert controller.executing == 0  # slot returned by callback

        run(scenario())

    def test_budget_spent_in_queue_is_not_granted_again(self):
        async def scenario():
            controller = AdmissionController(1, 2, timeout=None)
            loop = asyncio.get_running_loop()
            await controller.acquire(None)

            async def late():
                with pytest.raises(Overloaded) as info:
                    await controller.run(
                        loop, None, lambda: "never", timeout=0.05
                    )
                return info.value.status

            task = asyncio.ensure_future(late())
            status = await task
            assert status == 503
            controller.release()
            assert controller.executing == 0

        run(scenario())

    def test_stats_document(self):
        controller = AdmissionController(3, 7, timeout=1.0)
        stats = controller.stats()
        assert stats["max_concurrency"] == 3
        assert stats["queue_depth"] == 7
        assert stats["executing"] == 0
