"""Shutdown-drain and compaction-vs-live-stream regression tests.

The service must drain in-flight requests — and drop suspended SSE
sessions, whose ``AnswerStream``s pin store generations — **before** an
owned engine is closed; and a compaction landing mid-stream must leave
the suspended stream byte-identical (it keeps serving its pinned
pre-compaction generation while new queries see the new one).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import QueryService, ServeClient, ServeConfig
from repro.serve.http import serialize_answer

from conftest import open_engine

WIDE_QUERY = "?x ?p ?y"


def test_compaction_during_active_sse_stream_is_byte_identical(snapshot_dir):
    # Reference BEFORE any ingestion: compaction writes the next
    # generation into the same snapshot root, so a later open would see
    # the post-compaction world.
    with open_engine(snapshot_dir) as reference_engine:
        reference = [
            serialize_answer(answer, rank)
            for rank, answer in enumerate(
                reference_engine.ask(WIDE_QUERY, k=30), start=1
            )
        ]
    assert len(reference) == 30

    engine = open_engine(snapshot_dir, compaction_threshold=6)
    with QueryService(engine, ServeConfig(port=0), owns_engine=True) as service:
        client = ServeClient(service.host, service.port)
        first = client.stream(WIDE_QUERY, n=10)
        assert "gen0" in first.meta["snapshot"]

        rows = [[f"Live{i}", "livesIn", f"E{i % 7}"] for i in range(8)]
        client.ingest(rows, confidence=0.6)
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            health = client.healthz()
            if health["generation"] >= 1 and health["delta"]["size"] == 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("compaction did not land within the deadline")

        # The suspended session keeps streaming against its pinned
        # pre-compaction generation: ranks continue byte-identically.
        second = client.resume(first.session, n=10)
        third = client.resume(first.session, n=10)
        assert second.meta["snapshot"] == first.meta["snapshot"]
        got = first.answers + second.answers + third.answers
        assert got == reference
        # ...while a fresh query sees the compacted world.
        assert "gen1" in client.query(WIDE_QUERY, k=5)["snapshot"]
    # owns_engine: close() drained, dropped the session pins, closed it.
    assert engine.closed


def test_shutdown_waits_for_inflight_requests(snapshot_dir):
    engine = open_engine(snapshot_dir)
    direct_ask = engine.ask

    def slow_ask(query, k=None):
        time.sleep(0.6)
        return direct_ask(query, k)

    engine.ask = slow_ask
    service = QueryService(
        engine, ServeConfig(port=0, drain_grace=10.0), owns_engine=True
    ).start()
    client = ServeClient(service.host, service.port)
    outcome: dict = {}

    def fire():
        try:
            outcome["payload"] = client.query(WIDE_QUERY, k=3)
        except BaseException as exc:  # noqa: BLE001 - reported below
            outcome["error"] = exc

    thread = threading.Thread(target=fire)
    thread.start()
    time.sleep(0.2)  # the request is mid engine work
    service.close()  # must drain it, not yank the engine from under it
    thread.join(timeout=30)
    assert "error" not in outcome, repr(outcome.get("error"))
    assert len(outcome["payload"]["answers"]) == 3
    assert engine.closed
    with pytest.raises(OSError):
        ServeClient(service.host, service.port, timeout=2.0).healthz()


def test_drain_closes_idle_keepalive_connections(snapshot_dir):
    # A kept-alive connection idling between requests is NOT in-flight:
    # shutdown must not wait out its idle window, it closes the socket
    # under the reader so the drain completes immediately.
    engine = open_engine(snapshot_dir)
    service = QueryService(
        engine,
        ServeConfig(port=0, drain_grace=10.0, keepalive_idle=60.0),
        owns_engine=True,
    ).start()
    client = ServeClient(service.host, service.port)
    assert client.healthz()["status"] == "ok"
    assert client._connection is not None  # parked, idle, kept alive
    started = time.monotonic()
    service.close()
    # Neither the 60s idle window nor the 10s grace was waited out.
    assert time.monotonic() - started < 5.0
    assert engine.closed
    with pytest.raises((ConnectionError, OSError)):
        client.healthz()  # retry-once still fails: the server is gone
    client.close()


def test_close_is_idempotent_and_stop_without_start_is_noop(engine):
    service = QueryService(engine, ServeConfig(port=0))
    service.stop()  # never started: no-op
    service.start()
    client = ServeClient(service.host, service.port)
    assert client.healthz()["status"] == "ok"
    service.close()
    service.close()
    assert not engine.closed  # owns_engine=False leaves the engine alone
