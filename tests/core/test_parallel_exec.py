"""Engine-level parallel execution: the shared executor and its lifecycle.

One engine owns one worker pool (``EngineConfig.parallelism``) shared by
``ask_many`` fan-out, per-segment posting prefetch and cursor priming; it is
shut down by ``close()``.  These tests pin the pool's identity (no fresh
pool per call), the serial fallback, the stats counters the parallel merge
feeds, and — the concurrent-correctness stress — that interleaving
``stream().next_k`` with ``ask_many`` on one shared engine yields exactly
the serial answers on every backend.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.errors import TrinitError
from repro.kg.paper_example import paper_store
from repro.topk.processor import ProcessorConfig

QUERIES = [
    "?x bornIn ?y",
    "?x type ?y",
    "AlbertEinstein affiliation ?x",
    "?x 'lectured at' ?y",
    "?p bornIn ?c ; ?c locatedIn Germany",
]


def _engine(backend: str, parallelism: int | None = 4, **kwargs) -> TriniT:
    config = EngineConfig(
        storage_backend=backend, parallelism=parallelism, **kwargs
    )
    return TriniT(paper_store(), config=config)


def signature(answer_set):
    return [(a.binding, a.score) for a in answer_set]


class TestSharedExecutor:
    def test_engine_owns_one_executor(self):
        engine = _engine("sharded")
        assert engine._executor is not None
        assert engine.processor.executor is engine._executor
        before = engine._executor
        engine.ask_many(QUERIES, k=3)
        engine.ask_many(QUERIES, k=3)
        assert engine._executor is before  # reused, not rebuilt per call

    def test_close_shuts_executor_down(self):
        engine = _engine("sharded")
        pool = engine._executor
        engine.close()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)
        with pytest.raises(TrinitError):
            engine.ask_many(QUERIES, k=3)

    def test_parallelism_one_means_no_executor(self):
        engine = _engine("sharded", parallelism=1)
        assert engine._executor is None
        assert engine.processor.executor is None
        # ask_many falls back to sequential evaluation and still works.
        results = engine.ask_many(QUERIES, k=3)
        assert len(results) == len(QUERIES)

    def test_variant_shares_executor(self):
        engine = _engine("sharded")
        variant = engine.variant(use_relaxation=False)
        assert variant._executor is engine._executor
        assert variant.processor.executor is engine._executor

    def test_max_workers_one_forces_sequential(self):
        engine = _engine("sharded")
        sequential = engine.ask_many(QUERIES, k=3, max_workers=1)
        pooled = engine.ask_many(QUERIES, k=3)
        assert [signature(s) for s in sequential] == [
            signature(p) for p in pooled
        ]


class TestSegmentStats:
    def test_sharded_counters_filled(self):
        engine = _engine("sharded", merge_batch=4)
        answers = engine.ask("?x bornIn ?y", k=5)
        assert answers.stats.segments_touched > 0
        assert answers.stats.postings_materialized > 0

    def test_monolithic_counters_zero(self):
        engine = _engine("columnar")
        answers = engine.ask("?x bornIn ?y", k=5)
        assert answers.stats.segments_touched == 0
        assert answers.stats.postings_materialized == 0

    def test_counters_deterministic_across_configs(self):
        # The *answer-side* counters must not depend on executor timing.
        parallel = _engine("sharded", parallelism=4).ask("?x bornIn ?y", k=5)
        serial = _engine("sharded", parallelism=1).ask("?x bornIn ?y", k=5)
        assert parallel.stats.segments_touched == serial.stats.segments_touched
        assert parallel.stats.sorted_accesses == serial.stats.sorted_accesses


@pytest.mark.parametrize("backend", ["dict", "columnar", "sharded"])
class TestConcurrentStress:
    """Interleave stream pagination and batch queries on one shared engine."""

    def test_interleaved_streams_and_ask_many(self, backend):
        engine = _engine(backend, parallelism=4, merge_batch=3)
        reference = {
            text: signature(engine.ask(text, k=8)) for text in QUERIES
        }

        def paginate(text):
            stream = engine.stream(text)
            collected = list(stream.next_k(3))
            collected += stream.next_k(2)
            collected += stream.next_k(3)
            return text, [(a.binding, a.score) for a in collected]

        def batch(_round):
            return [signature(s) for s in engine.ask_many(QUERIES, k=8)]

        # Drive pagination and whole-batch calls from competing threads so
        # driver resumption, segment pulls and cursor priming interleave on
        # the one shared pool.
        with ThreadPoolExecutor(max_workers=6) as outer:
            stream_futures = [
                outer.submit(paginate, text) for text in QUERIES for _ in (0, 1)
            ]
            batch_futures = [outer.submit(batch, i) for i in range(3)]
            for future in stream_futures:
                text, collected = future.result()
                assert collected == reference[text][: len(collected)], text
            for future in batch_futures:
                assert future.result() == [reference[t] for t in QUERIES]

    def test_streams_resume_exactly_after_contention(self, backend):
        engine = _engine(backend, parallelism=4, merge_batch=2)
        eager = signature(engine.ask(QUERIES[0], k=8))
        stream = engine.stream(QUERIES[0])
        first = stream.next_k(4)
        engine.ask_many(QUERIES, k=5)  # contend on the shared pool
        rest = stream.next_k(4)
        assert [(a.binding, a.score) for a in [*first, *rest]] == eager[:8]


class TestExhaustiveParallel:
    def test_exhaustive_identical_serial_vs_parallel(self):
        processor = ProcessorConfig(exhaustive=True)
        parallel = _engine("sharded", parallelism=4, processor=processor)
        serial = _engine(
            "sharded", parallelism=1, merge_batch=1, processor=processor
        )
        for text in QUERIES:
            assert signature(parallel.ask(text, k=10)) == signature(
                serial.ask(text, k=10)
            )


class TestCloseRaces:
    def test_postings_after_pool_shutdown_falls_back_inline(self):
        # Regression: the first _submit hitting a shut-down executor must
        # not leave later segments dereferencing a None executor.
        engine = _engine("sharded", merge_batch=2)
        reference = signature(engine.ask(QUERIES[0], k=8))
        engine._executor.shutdown(wait=True, cancel_futures=True)
        # The store is still open: queries must complete serially.
        assert signature(engine.ask(QUERIES[0], k=8)) == reference

    def test_ask_many_bounded_max_workers(self):
        engine = _engine("sharded")
        bounded = engine.ask_many(QUERIES, k=5, max_workers=2)
        unbounded = engine.ask_many(QUERIES, k=5)
        assert [signature(b) for b in bounded] == [
            signature(u) for u in unbounded
        ]
