"""Unit tests for the textual query/rule parser."""

import pytest

from repro.core.parser import parse_pattern, parse_query, parse_rule
from repro.core.terms import Literal, Resource, TextToken, Variable
from repro.errors import ParseError


class TestParsePattern:
    def test_basic(self):
        p = parse_pattern("?x bornIn Germany")
        assert p.s == Variable("x")
        assert p.p == Resource("bornIn")
        assert p.o == Resource("Germany")

    def test_token_with_spaces(self):
        p = parse_pattern("AlbertEinstein 'won nobel for' ?x")
        assert p.p == TextToken("won nobel for")

    def test_literal(self):
        p = parse_pattern('AlbertEinstein bornOn "1879-03-14"')
        assert isinstance(p.o, Literal)

    def test_rejects_two_terms(self):
        with pytest.raises(ParseError):
            parse_pattern("?x bornIn")

    def test_rejects_four_terms(self):
        with pytest.raises(ParseError):
            parse_pattern("?x bornIn Germany extra")

    def test_rejects_multiple_patterns(self):
        with pytest.raises(ParseError):
            parse_pattern("?x bornIn Germany ; ?x type person")


class TestParseQuery:
    def test_bare_pattern(self):
        q = parse_query("?x bornIn Germany")
        assert len(q.patterns) == 1
        assert q.projection == (Variable("x"),)

    def test_multi_pattern_semicolon(self):
        q = parse_query("AlbertEinstein affiliation ?x ; ?x member IvyLeague")
        assert len(q.patterns) == 2

    def test_select_where(self):
        q = parse_query("SELECT ?x WHERE ?x bornIn ?y ; ?y locatedIn Germany")
        assert q.projection == (Variable("x"),)

    def test_limit(self):
        q = parse_query("?x bornIn Germany LIMIT 3")
        assert q.limit == 3

    def test_select_where_limit_combined(self):
        q = parse_query(
            "SELECT ?x ?y WHERE ?x bornIn ?y ; ?y locatedIn Germany LIMIT 7"
        )
        assert q.projection == (Variable("x"), Variable("y"))
        assert q.limit == 7

    def test_default_limit(self):
        assert parse_query("?x bornIn Germany", default_limit=25).limit == 25

    def test_rejects_empty(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_rejects_select_without_where(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?x ?y bornIn Germany")

    def test_rejects_constant_in_select(self):
        with pytest.raises(ParseError):
            parse_query("SELECT Germany WHERE ?x bornIn Germany")

    def test_rejects_bad_limit(self):
        with pytest.raises(ParseError):
            parse_query("?x bornIn Germany LIMIT many")

    def test_rejects_unterminated_quote(self):
        with pytest.raises(ParseError):
            parse_query("?x 'born in Germany")

    def test_dot_as_separator(self):
        q = parse_query("?x bornIn ?y . ?y locatedIn Germany")
        assert len(q.patterns) == 2

    def test_roundtrip_n3(self):
        q = parse_query("SELECT ?x WHERE AlbertEinstein 'won nobel for' ?x LIMIT 5")
        assert parse_query(q.n3()).n3() == q.n3()


class TestParseRule:
    def test_simple_inversion(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0")
        assert rule.weight == 1.0
        assert len(rule.original) == 1
        assert len(rule.replacement) == 1
        assert rule.origin == "manual"

    def test_expanding_rule_with_token(self):
        rule = parse_rule(
            "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8"
        )
        assert rule.weight == 0.8
        assert len(rule.replacement) == 2
        assert rule.replacement[1].p == TextToken("housed in")

    def test_default_weight(self):
        rule = parse_rule("?x a ?y => ?y b ?x")
        assert rule.weight == 1.0

    def test_rejects_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rule("?x a ?y ; ?y b ?x")

    def test_rejects_bad_weight(self):
        with pytest.raises(ParseError):
            parse_rule("?x a ?y => ?y b ?x @ heavy")

    def test_multi_pattern_original(self):
        rule = parse_rule(
            "?x bornIn ?y ; ?y type country => "
            "?x bornIn ?z ; ?z type city ; ?z locatedIn ?y @ 1.0"
        )
        assert len(rule.original) == 2
        assert len(rule.replacement) == 3
