"""Unit tests for the answer model (Answer, AnswerSet, Derivation)."""

import pytest

from repro.core.parser import parse_query, parse_rule
from repro.core.results import (
    Answer,
    AnswerSet,
    Derivation,
    PatternMatchInfo,
    QueryStats,
    binding_key,
)
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Provenance, Triple, TriplePattern
from repro.storage.store import StoredTriple

X, Y = Variable("x"), Variable("y")


def _kg_record():
    return StoredTriple(
        Triple(Resource("A"), Resource("p"), Resource("B")),
        provenances=[Provenance("kg", "KG")],
    )


def _xkg_record():
    return StoredTriple(
        Triple(Resource("A"), TextToken("works at"), Resource("B")),
        confidence=0.8,
        provenances=[Provenance("openie", "doc-1", "A works at B", "reverb")],
    )


def _derivation(records=(), rule=None):
    info = PatternMatchInfo(
        pattern=TriplePattern(X, Resource("p"), Y),
        records=tuple(records),
        score=0.5,
        rule=rule,
    )
    return Derivation(matches=(info,))


class TestBindingKey:
    def test_sorted_by_variable_name(self):
        key = binding_key({Y: Resource("B"), X: Resource("A")})
        assert [v.name for v, _t in key] == ["x", "y"]

    def test_hashable_and_equal(self):
        a = binding_key({X: Resource("A")})
        b = binding_key({X: Resource("A")})
        assert a == b
        assert hash(a) == hash(b)


class TestDerivation:
    def test_uses_xkg_via_token_triple(self):
        assert _derivation([_xkg_record()]).uses_xkg
        assert not _derivation([_kg_record()]).uses_xkg

    def test_uses_relaxation_via_pattern_rule(self):
        rule = parse_rule("?x p ?y => ?x q ?y @ 0.5")
        assert _derivation([_kg_record()], rule=rule).uses_relaxation
        assert not _derivation([_kg_record()]).uses_relaxation

    def test_rules_used_deduplicated(self):
        rule = parse_rule("?x p ?y => ?x q ?y @ 0.5")
        info = PatternMatchInfo(
            pattern=TriplePattern(X, Resource("p"), Y),
            records=(),
            score=0.5,
            rule=rule,
        )
        derivation = Derivation(matches=(info, info))
        assert derivation.rules_used() == [rule]

    def test_triples_used_in_pattern_order(self):
        kg, xkg = _kg_record(), _xkg_record()
        derivation = Derivation(
            matches=(
                PatternMatchInfo(TriplePattern(X, Resource("p"), Y), (kg,), 0.5),
                PatternMatchInfo(TriplePattern(X, Resource("q"), Y), (xkg,), 0.5),
            )
        )
        assert derivation.triples_used() == [kg, xkg]


class TestAnswer:
    def _answer(self):
        return Answer(
            binding=binding_key({X: Resource("A"), Y: Resource("B")}),
            score=0.75,
            derivation=_derivation(),
        )

    def test_value_by_name_or_variable(self):
        answer = self._answer()
        assert answer.value("x") == Resource("A")
        assert answer.value(Variable("y")) == Resource("B")

    def test_value_unknown_raises(self):
        with pytest.raises(KeyError):
            self._answer().value("z")

    def test_as_dict(self):
        assert self._answer().as_dict() == {X: Resource("A"), Y: Resource("B")}

    def test_render(self):
        rendered = self._answer().render()
        assert "?x=A" in rendered and "0.7500" in rendered


class TestAnswerSet:
    def _answer_set(self):
        query = parse_query("?x p ?y")
        answers = [
            Answer(binding_key({X: Resource("A"), Y: Resource("B")}), 0.9, _derivation()),
            Answer(binding_key({X: Resource("C"), Y: Resource("D")}), 0.4, _derivation()),
        ]
        return AnswerSet(query=query, answers=answers, k=5)

    def test_iteration_and_indexing(self):
        answer_set = self._answer_set()
        assert len(answer_set) == 2
        assert answer_set[0].score == 0.9
        assert [a.score for a in answer_set] == [0.9, 0.4]

    def test_top_and_empty(self):
        answer_set = self._answer_set()
        assert answer_set.top().score == 0.9
        empty = AnswerSet(query=parse_query("?x p ?y"))
        assert empty.is_empty
        assert empty.top() is None

    def test_terms_for(self):
        answer_set = self._answer_set()
        assert answer_set.terms_for("x") == [Resource("A"), Resource("C")]

    def test_bindings(self):
        assert self._answer_set().bindings()[0][X] == Resource("A")

    def test_render_table(self):
        table = self._answer_set().render_table()
        assert "?x" in table and "score" in table
        assert "0.9000" in table

    def test_render_empty(self):
        empty = AnswerSet(query=parse_query("?x p ?y"))
        assert empty.render_table() == "(no answers)"

    def test_stats_default(self):
        assert isinstance(self._answer_set().stats, QueryStats)


class TestQueryStatsAlgebra:
    """merge()/diff() must stay a proper commutative-monoid algebra as
    counters are added (delta_hits and posting_pulls are the newest);
    the serve metrics surface leans on every one of these laws."""

    def _sample(self, seed: int) -> QueryStats:
        import dataclasses

        values = {}
        for offset, spec in enumerate(dataclasses.fields(QueryStats)):
            raw = (seed * 7 + offset * 3) % 11
            values[spec.name] = float(raw) / 4 if spec.name == "elapsed_seconds" else raw
        return QueryStats(**values)

    def test_every_field_participates(self):
        import dataclasses

        a, b = self._sample(1), self._sample(2)
        merged = a.merge(b)
        for spec in dataclasses.fields(QueryStats):
            assert getattr(merged, spec.name) == pytest.approx(
                getattr(a, spec.name) + getattr(b, spec.name)
            ), spec.name
        assert merged.delta_hits == a.delta_hits + b.delta_hits
        assert merged.posting_pulls == a.posting_pulls + b.posting_pulls

    def test_empty_is_the_merge_identity(self):
        sample = self._sample(3)
        assert sample.merge(QueryStats()) == sample
        assert QueryStats().merge(sample) == sample

    def test_self_diff_is_zero(self):
        sample = self._sample(4)
        assert sample.diff(sample) == QueryStats()

    def test_merge_is_associative_and_variadic(self):
        a, b, c = self._sample(1), self._sample(2), self._sample(3)
        assert a.merge(b).merge(c) == a.merge(b.merge(c)) == a.merge(b, c)

    def test_merge_diff_roundtrip(self):
        before, delta = self._sample(5), self._sample(6)
        after = before.merge(delta)
        assert after.diff(before) == delta
        assert before.merge(after.diff(before)) == after

    def test_merge_leaves_operands_untouched(self):
        a, b = self._sample(7), self._sample(8)
        a_copy, b_copy = a.copy(), b.copy()
        a.merge(b)
        assert a == a_copy and b == b_copy
