"""Unit tests for query suggestion."""

import pytest

from repro.core.suggestion import KIND_RESOURCE, QuerySuggester
from repro.core.parser import parse_query
from repro.core.terms import Resource
from repro.storage.statistics import StoreStatistics
from repro.storage.text_index import TokenMatcher


@pytest.fixture(scope="module")
def suggester(tiny_harness):
    engine = tiny_harness.engine
    return QuerySuggester(engine.statistics, engine.matcher, min_overlap=0.2)


class TestResourceSuggestions:
    def test_token_predicate_suggests_kg_predicate(self, tiny_harness, suggester):
        """'works at' should suggest the canonical affiliation predicate —
        the paper's token→resource suggestion."""
        query = parse_query("?x 'works at' ?y")
        suggestions = suggester.resource_suggestions(query)
        assert any(
            s.replacement == "affiliation" and s.kind == KIND_RESOURCE
            for s in suggestions
        )

    def test_no_tokens_no_suggestions(self, suggester):
        query = parse_query("?x affiliation ?y")
        assert suggester.resource_suggestions(query) == []

    def test_duplicate_tokens_suggested_once(self, suggester):
        query = parse_query("?x 'works at' ?y ; ?z 'works at' ?y")
        suggestions = suggester.resource_suggestions(query)
        texts = [s.text for s in suggestions]
        assert len(texts) == len(set(texts))

    def test_scores_sorted(self, suggester):
        query = parse_query("?x 'works at' ?y")
        suggestions = suggester.resource_suggestions(query)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_max_suggestions_respected(self, tiny_harness):
        engine = tiny_harness.engine
        limited = QuerySuggester(
            engine.statistics,
            engine.matcher,
            min_overlap=0.01,
            max_suggestions_per_token=2,
        )
        query = parse_query("?x 'works at' ?y")
        by_kind = [s for s in limited.resource_suggestions(query)]
        assert len(by_kind) <= 2


class TestRuleSuggestions:
    def test_invoked_rules_surfaced(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        suggester = paper_engine_fixture.suggester
        suggestions = suggester.rule_suggestions(answers)
        assert suggestions
        assert any("housed in" in s.text for s in suggestions)

    def test_exact_answers_no_rule_notes(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask("AlbertEinstein bornIn ?x")
        assert paper_engine_fixture.suggester.rule_suggestions(answers) == []

    def test_combined_suggest(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        suggestions = paper_engine_fixture.suggest(answers.query, answers)
        assert suggestions
        assert all(0 < s.score <= 1 for s in suggestions)
