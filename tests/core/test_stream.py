"""The public streaming API: ``engine.stream`` and :class:`AnswerStream`."""

import pytest

from repro.core.results import QueryStats
from repro.errors import StorageError, TopKError, TrinitError
from repro.kg.paper_example import paper_engine


@pytest.fixture(scope="module")
def engine():
    return paper_engine()


def signature(answers):
    return [(a.binding, a.score) for a in answers]


class TestNextK:
    def test_batches_match_eager_ask(self, engine):
        query = "?x type ?y"
        eager = engine.ask(query, 10)
        stream = engine.stream(query)
        collected = stream.next_k(1) + stream.next_k(2) + stream.next_k(7)
        assert signature(collected) == signature(eager.answers)

    def test_short_batch_then_empty_on_exhaustion(self, engine):
        stream = engine.stream("AlbertEinstein bornIn ?x")
        first = stream.next_k(5)
        assert len(first) == 1
        assert stream.exhausted
        assert stream.next_k(3) == []

    def test_rejects_bad_n(self, engine):
        with pytest.raises(TopKError):
            engine.stream("?x type ?y").next_k(0)

    def test_len_counts_emitted(self, engine):
        stream = engine.stream("?x type ?y")
        stream.next_k(2)
        assert len(stream) == 2


class TestCollectedAndIteration:
    def test_collected_accumulates(self, engine):
        query = "?x type ?y"
        stream = engine.stream(query)
        stream.next_k(2)
        partial = stream.collected()
        assert len(partial) == 2 and partial.k == 2
        stream.next_k(8)
        full = stream.collected()
        assert signature(full.answers) == signature(engine.ask(query, 10).answers)
        assert full.k == 10

    def test_iteration_pulls_lazily_and_replays(self, engine):
        query = "?x type ?y"
        eager = engine.ask(query, 10)
        stream = engine.stream(query)
        first_pass = list(stream)
        assert signature(first_pass) == signature(eager.answers)
        # Re-iteration replays the already-emitted answers identically.
        assert signature(list(stream)) == signature(first_pass)


class TestStreamStats:
    def test_per_call_deltas_merge_to_cumulative(self, engine):
        stream = engine.stream("?x type ?y")
        deltas = []
        stream.next_k(1)
        deltas.append(stream.last_stats)
        stream.next_k(2)
        deltas.append(stream.last_stats)
        merged = QueryStats().merge(*deltas)
        cumulative = stream.stats
        assert merged == cumulative
        assert cumulative.answers_emitted == 3
        assert cumulative.resumes == 1

    def test_resume_does_not_recompute(self, engine):
        query = "?x type ?y"
        ask3 = engine.ask(query, 3).stats.sorted_accesses
        ask10 = engine.ask(query, 10).stats.sorted_accesses
        stream = engine.stream(query)
        stream.next_k(3)
        stream.next_k(7)
        # Paging 3-then-7 must beat re-asking at 3 and again at 10; the
        # second call alone must not redo the first call's accesses.
        assert stream.stats.sorted_accesses <= ask3 + ask10
        assert stream.last_stats.sorted_accesses <= ask10

    def test_eager_ask_has_no_streaming_counters(self, engine):
        stats = engine.ask("?x type ?y", 5).stats
        assert stats.answers_emitted == 0
        assert stats.resumes == 0


class TestQueryStatsAlgebra:
    def test_merge_sums_fieldwise(self):
        a = QueryStats(sorted_accesses=3, elapsed_seconds=0.5, resumes=1)
        b = QueryStats(sorted_accesses=4, candidates_formed=2)
        merged = a.merge(b)
        assert merged.sorted_accesses == 7
        assert merged.candidates_formed == 2
        assert merged.elapsed_seconds == 0.5
        assert merged.resumes == 1
        # merge() never mutates its operands
        assert a.sorted_accesses == 3 and b.sorted_accesses == 4

    def test_diff_inverts_merge(self):
        before = QueryStats(sorted_accesses=3, answers_emitted=2)
        after = QueryStats(sorted_accesses=10, answers_emitted=5, resumes=1)
        delta = after.diff(before)
        assert before.merge(delta) == after


class TestCloseMidStream:
    def test_next_k_after_close_raises(self):
        engine = paper_engine()
        stream = engine.stream("?x type ?y")
        stream.next_k(1)
        engine.close()
        with pytest.raises(StorageError):
            stream.next_k(1)

    def test_emitted_answers_survive_close(self):
        engine = paper_engine()
        stream = engine.stream("?x type ?y")
        batch = stream.next_k(2)
        engine.close()
        assert len(stream.collected()) == 2
        assert all(a.render() for a in batch)  # decoded answers still render


class TestBaselineDriverStats:
    def test_qars_exposes_driver_stats(self, frozen_small_store):
        from repro.baselines.qars import QarsBaseline
        from repro.core.parser import parse_query
        from repro.core.terms import Variable

        baseline = QarsBaseline(frozen_small_store)
        assert baseline.last_stats == QueryStats()
        terms = baseline.rank(parse_query("?x bornIn ?y"), Variable("x"), 3)
        assert terms
        assert baseline.last_stats.sorted_accesses > 0
        assert baseline.last_stats.rewritings_processed >= 1


class TestDemoMore:
    def test_session_more_resumes(self, frozen_small_store):
        from repro.core.engine import TriniT
        from repro.demo.interface import DemoSession

        engine = TriniT(frozen_small_store)
        eager = engine.ask("?x 'lectured at' ?y", 10)
        session = DemoSession(engine, k=1)
        session.run("?x 'lectured at' ?y")
        assert len(session.last_answers) == 1
        batch = session.more(1)
        assert signature(session.last_answers.answers) == signature(
            eager.answers[: 1 + len(batch)]
        )

    def test_more_without_query_raises(self, frozen_small_store):
        from repro.core.engine import TriniT
        from repro.demo.interface import DemoSession

        with pytest.raises(TrinitError):
            DemoSession(TriniT(frozen_small_store)).more()

    def test_render_more_screen(self, frozen_small_store):
        from repro.core.engine import TriniT
        from repro.demo.interface import DemoSession

        session = DemoSession(TriniT(frozen_small_store), k=1)
        session.run("?x 'lectured at' ?y")
        screen = session.render_more_screen()
        assert "More Answers" in screen
        assert "2." in screen
        # Exhaust, then the screen reports it.
        while session.more():
            pass
        assert "exhausted" in session.render_more_screen()
