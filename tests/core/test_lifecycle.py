"""Engine session lifecycle: ``TriniT.open``, context manager, ``close``."""

import pytest

from repro.core.engine import TriniT
from repro.errors import StorageError
from repro.kg.paper_example import paper_engine
from repro.storage.persistence import save_store
from repro.storage.snapshot import save_snapshot


@pytest.fixture()
def snapshot_path(tmp_path):
    engine = paper_engine()
    store = engine.store
    if store.backend_name != "columnar":
        store = store.convert("columnar")
    path = tmp_path / "paper.snap"
    save_snapshot(store, path)
    return path


class TestOpen:
    def test_open_snapshot_and_query(self, snapshot_path):
        with TriniT.open(snapshot_path) as engine:
            answers = engine.ask("?x bornIn ?y", 5)
            assert not answers.is_empty
        assert engine.closed
        assert engine.store.closed

    def test_open_releases_mmap_on_exit(self, snapshot_path):
        with TriniT.open(snapshot_path) as engine:
            backend = engine.store.backend
            assert backend._buffer is not None
        assert backend._buffer is None  # unmapped, not leaked

    def test_open_jsonl(self, tmp_path):
        path = tmp_path / "paper.jsonl"
        save_store(paper_engine().store, path)
        with TriniT.open(path) as engine:
            assert not engine.ask("?x bornIn ?y", 5).is_empty

    def test_open_forwards_kwargs(self, snapshot_path):
        from repro.core.engine import EngineConfig

        config = EngineConfig(mine_chains=False)
        with TriniT.open(snapshot_path, config=config) as engine:
            assert engine.config.mine_chains is False

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            TriniT.open(tmp_path / "nope.snap")


class TestClose:
    def test_close_is_idempotent(self, snapshot_path):
        engine = TriniT.open(snapshot_path)
        engine.close()
        engine.close()
        assert engine.closed

    def test_ask_after_close_raises(self, snapshot_path):
        engine = TriniT.open(snapshot_path)
        engine.close()
        with pytest.raises(StorageError):
            engine.ask("?x bornIn ?y", 5)

    def test_close_works_without_open(self):
        # In-memory engines participate in the same lifecycle.
        engine = paper_engine()
        with engine:
            assert not engine.ask("?x bornIn ?y").is_empty
        assert engine.closed
        with pytest.raises(StorageError):
            engine.ask("?x bornIn ?y")

    def test_materialised_answers_survive_close(self, snapshot_path):
        engine = TriniT.open(snapshot_path)
        answers = engine.ask("?x bornIn ?y", 5)
        engine.close()
        # Decoded terms, scores and explanations stay renderable.
        assert answers.render_table()
        assert engine.explain(answers.top()).render()
