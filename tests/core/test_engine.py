"""Unit tests for the TriniT engine facade."""

import pytest

from repro.core.engine import EngineConfig, TriniT
from repro.core.query import Query
from repro.core.terms import Resource
from repro.errors import TrinitError
from repro.relax.operators import OperatorRegistry


class TestConstruction:
    def test_freezes_unfrozen_store(self, small_store):
        engine = TriniT(small_store)
        assert engine.store.is_frozen

    def test_from_triples(self, paper_engine_fixture):
        assert len(paper_engine_fixture.store) == 13  # 6 + 3 types + 4 ext

    def test_default_operators_registered(self, paper_engine_fixture):
        names = paper_engine_fixture.registry.names()
        assert "arg-overlap" in names
        assert "chain-expansion" in names
        assert "inversions" in names

    def test_optional_miners_respected(self, frozen_small_store):
        engine = TriniT(
            frozen_small_store,
            config=EngineConfig(mine_amie=True, mine_esa=True),
        )
        assert "amie" in engine.registry.names()
        assert "esa" in engine.registry.names()

    def test_custom_registry_used(self, frozen_small_store):
        registry = OperatorRegistry()
        called = []
        registry.register("probe", lambda ctx: called.append(True) or [])
        TriniT(frozen_small_store, registry=registry)
        assert called


class TestAsk:
    def test_string_query(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask("AlbertEinstein bornIn ?x")
        assert answers.top().value("x") == Resource("Ulm")

    def test_parsed_query(self, paper_engine_fixture):
        query = paper_engine_fixture.parse("AlbertEinstein bornIn ?x")
        assert isinstance(query, Query)
        answers = paper_engine_fixture.ask(query, k=1)
        assert len(answers) == 1

    def test_k_override(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask("?x type ?y", k=2)
        assert len(answers) == 2


class TestExplainSuggest:
    def test_explain_top_answer(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        explanation = paper_engine_fixture.explain(answers.top(), answers.query)
        assert explanation.used_relaxation
        assert explanation.used_xkg
        assert "PrincetonUniversity" in explanation.render()

    def test_explain_none_raises(self, paper_engine_fixture):
        with pytest.raises(TrinitError):
            paper_engine_fixture.explain(None)

    def test_suggest_token_query(self, paper_engine_fixture):
        suggestions = paper_engine_fixture.suggest("?x 'born in' Ulm")
        assert any(s.kind == "resource" for s in suggestions)

    def test_suggest_with_answers(self, paper_engine_fixture):
        answers = paper_engine_fixture.ask(
            "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        )
        suggestions = paper_engine_fixture.suggest(answers.query, answers)
        assert any(s.kind in ("rule-note", "reformulation") for s in suggestions)


class TestRules:
    def test_add_rule_text(self, frozen_small_store):
        engine = TriniT(frozen_small_store)
        rule = engine.add_rule("?x worksAt ?y => ?x affiliation ?y @ 0.5")
        assert rule.weight == 0.5
        answers = engine.ask("AlbertEinstein worksAt ?x")
        assert not answers.is_empty

    def test_add_rules_count(self, frozen_small_store):
        engine = TriniT(frozen_small_store)
        added = engine.add_rules(
            [
                "?x a ?y => ?x b ?y @ 0.5",
                "?x a ?y => ?x b ?y @ 0.5",  # duplicate
            ]
        )
        assert added == 1


class TestVariant:
    def test_variant_shares_data(self, paper_engine_fixture):
        variant = paper_engine_fixture.variant(use_relaxation=False)
        assert variant.store is paper_engine_fixture.store
        assert variant.rules is paper_engine_fixture.rules

    def test_variant_changes_behaviour(self, paper_engine_fixture):
        strict = paper_engine_fixture.variant(use_relaxation=False)
        query = "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
        assert paper_engine_fixture.ask(query).answers
        assert strict.ask(query).is_empty

    def test_variant_does_not_mutate_original(self, paper_engine_fixture):
        paper_engine_fixture.variant(use_relaxation=False)
        assert paper_engine_fixture.processor.config.use_relaxation
