"""Unit tests for triples, patterns, and provenance."""

import pytest

from repro.core.terms import Literal, Resource, TextToken, Variable
from repro.core.triples import KG_PROVENANCE, Provenance, Triple, TriplePattern
from repro.errors import TermError

AE = Resource("AlbertEinstein")
BORN = Resource("bornIn")
ULM = Resource("Ulm")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTriple:
    def test_basic(self):
        t = Triple(AE, BORN, ULM)
        assert t.terms() == (AE, BORN, ULM)
        assert t.n3() == "AlbertEinstein bornIn Ulm"

    def test_rejects_variables(self):
        with pytest.raises(TermError):
            Triple(AE, BORN, X)

    def test_rejects_non_terms(self):
        with pytest.raises(TermError):
            Triple(AE, "bornIn", ULM)

    def test_token_triple_detection(self):
        plain = Triple(AE, BORN, ULM)
        token = Triple(AE, TextToken("lectured at"), ULM)
        assert not plain.is_token_triple
        assert token.is_token_triple

    def test_equality_ignores_nothing(self):
        assert Triple(AE, BORN, ULM) == Triple(AE, BORN, ULM)


class TestProvenance:
    def test_kg_provenance(self):
        assert KG_PROVENANCE.is_kg
        assert "KG" in KG_PROVENANCE.describe()

    def test_extraction_provenance(self):
        p = Provenance("openie", "doc-1", "Some sentence", "reverb")
        assert p.is_extraction
        description = p.describe()
        assert "doc-1" in description
        assert "reverb" in description
        assert "Some sentence" in description


class TestTriplePattern:
    def test_variables_in_order(self):
        pattern = TriplePattern(Y, BORN, X)
        assert pattern.variables() == (Y, X)

    def test_repeated_variable_counted_once(self):
        pattern = TriplePattern(X, BORN, X)
        assert pattern.variables() == (X,)

    def test_fully_bound(self):
        assert TriplePattern(AE, BORN, ULM).is_fully_bound

    def test_unconstrained(self):
        assert TriplePattern(X, Y, Z).is_unconstrained

    def test_has_token(self):
        assert TriplePattern(X, TextToken("born in"), ULM).has_token
        assert not TriplePattern(X, BORN, ULM).has_token

    def test_matches_exact(self):
        pattern = TriplePattern(X, BORN, ULM)
        assert pattern.matches(Triple(AE, BORN, ULM))
        assert not pattern.matches(Triple(AE, BORN, Resource("Munich")))

    def test_bind_returns_binding(self):
        pattern = TriplePattern(X, BORN, Y)
        binding = pattern.bind(Triple(AE, BORN, ULM))
        assert binding == {X: AE, Y: ULM}

    def test_bind_repeated_variable_consistency(self):
        pattern = TriplePattern(X, Resource("knows"), X)
        same = Triple(AE, Resource("knows"), AE)
        different = Triple(AE, Resource("knows"), ULM)
        assert pattern.bind(same) == {X: AE}
        assert pattern.bind(different) is None

    def test_bind_constant_mismatch(self):
        pattern = TriplePattern(AE, BORN, Y)
        assert pattern.bind(Triple(ULM, BORN, ULM)) is None

    def test_substitute(self):
        pattern = TriplePattern(X, BORN, Y)
        result = pattern.substitute({X: AE})
        assert result == TriplePattern(AE, BORN, Y)

    def test_substitute_leaves_unbound(self):
        pattern = TriplePattern(X, BORN, Y)
        assert pattern.substitute({}) == pattern

    def test_rename_variables(self):
        pattern = TriplePattern(X, BORN, Y)
        renamed = pattern.rename_variables({"x": "a"})
        assert renamed == TriplePattern(Variable("a"), BORN, Y)

    def test_signature(self):
        assert TriplePattern(AE, BORN, X).signature() == "s_p"
        assert TriplePattern(X, BORN, Y).signature() == "p"
        assert TriplePattern(X, Y, Z).signature() == "scan"
        assert TriplePattern(AE, BORN, ULM).signature() == "s_p_o"

    def test_pattern_with_literal(self):
        pattern = TriplePattern(AE, Resource("bornOn"), Literal("1879-03-14"))
        assert pattern.is_fully_bound
