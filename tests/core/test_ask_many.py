"""Concurrent batch querying: ``engine.ask_many``."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import TriniT
from repro.core.parser import parse_query
from repro.kg.paper_example import paper_engine


@pytest.fixture(scope="module")
def engine():
    return paper_engine()


QUERY_POOL = [
    "?x bornIn ?y",
    "?x type ?y",
    "AlbertEinstein affiliation ?x",
    "?x 'lectured at' ?y",
    "?p bornIn ?c ; ?c locatedIn Germany",
    "?x bornIn Atlantis",
]


def signature(answer_set):
    return [(a.binding, a.score) for a in answer_set]


class TestAskMany:
    def test_results_in_input_order(self, engine):
        queries = list(QUERY_POOL)
        batch = engine.ask_many(queries, k=5)
        assert len(batch) == len(queries)
        for query_text, result in zip(queries, batch):
            assert result.query == parse_query(query_text)
            assert signature(result) == signature(engine.ask(query_text, 5))

    def test_accepts_parsed_queries(self, engine):
        parsed = [parse_query(q) for q in QUERY_POOL[:3]]
        batch = engine.ask_many(parsed, k=3)
        assert [r.query for r in batch] == parsed

    def test_empty_batch(self, engine):
        assert engine.ask_many([]) == []

    def test_duplicate_queries(self, engine):
        batch = engine.ask_many(["?x type ?y"] * 4, k=3)
        first = signature(batch[0])
        assert all(signature(result) == first for result in batch)

    def test_single_worker_path(self, engine):
        batch = engine.ask_many(QUERY_POOL[:2], k=3, max_workers=1)
        for query_text, result in zip(QUERY_POOL, batch):
            assert signature(result) == signature(engine.ask(query_text, 3))

    def test_default_k_uses_config(self, engine):
        result = engine.ask_many(["?x type ?y"])[0]
        assert result.k == engine.config.processor.k


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.sampled_from(QUERY_POOL), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=8),
)
def test_ask_many_matches_sequential_ask(queries, k):
    """Thread-safety property: randomized batches over one shared engine
    are bit-identical to sequential evaluation, in input order."""
    engine = _shared_engine()
    concurrent = engine.ask_many(queries, k=k, max_workers=4)
    sequential = [engine.ask(query, k) for query in queries]
    assert [signature(c) for c in concurrent] == [
        signature(s) for s in sequential
    ]


_ENGINE_CACHE: list[TriniT] = []


def _shared_engine() -> TriniT:
    # hypothesis forbids function-scoped fixtures; share one engine so the
    # property genuinely exercises concurrent access to warm shared caches.
    if not _ENGINE_CACHE:
        _ENGINE_CACHE.append(paper_engine())
    return _ENGINE_CACHE[0]
