"""Unit tests for the term model."""

import pytest
from datetime import date

from repro.core.terms import Literal, Resource, TextToken, Variable, term_from_text
from repro.errors import TermError


class TestResource:
    def test_basic(self):
        r = Resource("AlbertEinstein")
        assert r.kind == "resource"
        assert r.lexical() == "AlbertEinstein"
        assert r.n3() == "AlbertEinstein"
        assert r.is_constant and not r.is_variable

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            Resource("")

    def test_rejects_whitespace(self):
        with pytest.raises(TermError):
            Resource("Albert Einstein")

    def test_rejects_quotes(self):
        with pytest.raises(TermError):
            Resource("Al'bert")

    def test_equality_and_hash(self):
        assert Resource("A") == Resource("A")
        assert hash(Resource("A")) == hash(Resource("A"))
        assert Resource("A") != Resource("B")


class TestLiteral:
    def test_string(self):
        lit = Literal("hello")
        assert lit.datatype == "string"
        assert lit.n3() == '"hello"'

    def test_integer(self):
        assert Literal(42).datatype == "integer"

    def test_double(self):
        assert Literal(2.5).datatype == "double"

    def test_date(self):
        lit = Literal(date(1879, 3, 14))
        assert lit.datatype == "date"
        assert lit.lexical() == "1879-03-14"

    def test_rejects_bool(self):
        with pytest.raises(TermError):
            Literal(True)

    def test_rejects_none(self):
        with pytest.raises(TermError):
            Literal(None)


class TestTextToken:
    def test_normalisation_is_identity(self):
        a = TextToken("Won a NOBEL for")
        b = TextToken("won  a nobel for")
        assert a == b
        assert hash(a) == hash(b)
        assert a.norm == "won a nobel for"

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            TextToken("   ")

    def test_rejects_punctuation_only(self):
        with pytest.raises(TermError):
            TextToken("...")

    def test_match_key_predicate_mode(self):
        token = TextToken("was born in")
        assert token.match_key(predicate=True) == ("born", "in")

    def test_n3_quoting(self):
        assert TextToken("housed in").n3() == "'housed in'"

    def test_not_equal_to_resource(self):
        assert TextToken("ulm") != Resource("ulm")


class TestVariable:
    def test_basic(self):
        v = Variable("x")
        assert v.is_variable
        assert v.n3() == "?x"

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            Variable("")

    def test_rejects_punctuation(self):
        with pytest.raises(TermError):
            Variable("x y")


class TestOrdering:
    def test_kind_rank(self):
        terms = [Variable("v"), TextToken("tok"), Literal("lit"), Resource("Res")]
        ordered = sorted(terms)
        assert [t.kind for t in ordered] == ["resource", "literal", "token", "variable"]

    def test_lexical_within_kind(self):
        assert Resource("A") < Resource("B")


class TestTermFromText:
    def test_variable(self):
        assert term_from_text("?x") == Variable("x")

    def test_token(self):
        assert term_from_text("'won nobel for'") == TextToken("won nobel for")

    def test_resource(self):
        assert term_from_text("AlbertEinstein") == Resource("AlbertEinstein")

    def test_string_literal(self):
        assert term_from_text('"hello world"') == Literal("hello world")

    def test_date_literal_auto_typed(self):
        lit = term_from_text('"1879-03-14"')
        assert isinstance(lit, Literal)
        assert lit.datatype == "date"

    def test_int_literal_auto_typed(self):
        assert term_from_text('"42"') == Literal(42)

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            term_from_text("   ")

    def test_roundtrip_through_n3(self):
        for text in ["?x", "'housed in'", "AlbertEinstein", '"1921"']:
            term = term_from_text(text)
            assert term_from_text(term.n3()) == term
