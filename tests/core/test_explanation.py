"""Unit tests for answer explanations."""

import pytest

from repro.core.explanation import explain_answer


@pytest.fixture(scope="module")
def relaxed_answer(paper_engine_fixture):
    answers = paper_engine_fixture.ask(
        "AlbertEinstein affiliation ?x ; ?x member IvyLeague"
    )
    return answers.top(), answers.query


@pytest.fixture(scope="module")
def exact_answer(paper_engine_fixture):
    answers = paper_engine_fixture.ask("AlbertEinstein bornIn ?x")
    return answers.top(), answers.query


class TestStructure:
    def test_three_information_pieces(self, relaxed_answer):
        """The paper's (i) KG triples, (ii) XKG triples + provenance,
        (iii) rules invoked."""
        answer, query = relaxed_answer
        explanation = explain_answer(answer, query)
        assert explanation.kg_triples          # (i)
        assert explanation.xkg_triples         # (ii)
        assert explanation.rule_lines          # (iii)

    def test_xkg_provenance_included(self, relaxed_answer):
        answer, query = relaxed_answer
        rendered = explain_answer(answer, query).render()
        assert "extracted by reverb" in rendered
        assert "clueweb-doc" in rendered

    def test_rule_weight_shown(self, relaxed_answer):
        answer, query = relaxed_answer
        rendered = explain_answer(answer, query).render()
        assert "0.8" in rendered  # Figure 4 rule 3's weight

    def test_exact_answer_no_relaxation(self, exact_answer):
        answer, query = exact_answer
        explanation = explain_answer(answer, query)
        assert not explanation.used_relaxation
        assert "exact match" in explanation.render()

    def test_query_included_when_given(self, exact_answer):
        answer, query = exact_answer
        assert query.n3() in explain_answer(answer, query).render()

    def test_score_and_binding_shown(self, exact_answer):
        answer, _query = exact_answer
        rendered = explain_answer(answer).render()
        assert "Ulm" in rendered
        assert f"{answer.score:.4f}" in rendered

    def test_kg_triples_deduplicated(self, relaxed_answer):
        answer, query = relaxed_answer
        explanation = explain_answer(answer, query)
        assert len(explanation.kg_triples) == len(set(
            id(record) for record in explanation.kg_triples
        ))
