"""Unit tests for the Query model."""

import pytest

from repro.core.query import Query
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import TriplePattern
from repro.errors import QueryError

AE = Resource("AlbertEinstein")
AFF = Resource("affiliation")
MEMBER = Resource("member")
IVY = Resource("IvyLeague")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

P1 = TriplePattern(AE, AFF, X)
P2 = TriplePattern(X, MEMBER, IVY)


class TestConstruction:
    def test_basic(self):
        q = Query([P1, P2])
        assert len(q) == 2
        assert q.projection == (X,)

    def test_explicit_projection(self):
        q = Query([P1, P2], projection=[X])
        assert q.projection == (X,)

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            Query([])

    def test_rejects_bad_limit(self):
        with pytest.raises(QueryError):
            Query([P1], limit=0)

    def test_rejects_unknown_projection(self):
        with pytest.raises(QueryError):
            Query([P1], projection=[Z])

    def test_rejects_duplicate_projection(self):
        with pytest.raises(QueryError):
            Query([P1], projection=[X, X])

    def test_rejects_disconnected_patterns(self):
        disconnected = TriplePattern(Y, MEMBER, Z)
        with pytest.raises(QueryError):
            Query([P1, disconnected])

    def test_fully_bound_pattern_never_disconnects(self):
        assertion = TriplePattern(AE, MEMBER, IVY)
        q = Query([P1, assertion])
        assert len(q) == 2

    def test_default_projection_order(self):
        q = Query([TriplePattern(Y, AFF, X), TriplePattern(X, MEMBER, Z)])
        assert q.projection == (Y, X, Z)


class TestStructure:
    def test_variables(self):
        q = Query([P1, P2])
        assert q.variables() == (X,)

    def test_join_variables(self):
        q = Query([P1, P2])
        assert q.join_variables() == (X,)

    def test_no_join_for_single_pattern(self):
        assert Query([P1]).join_variables() == ()

    def test_has_token(self):
        token_pattern = TriplePattern(AE, TextToken("lectured at"), X)
        assert Query([token_pattern]).has_token
        assert not Query([P1]).has_token


class TestReplacePatterns:
    def test_single_replacement(self):
        replacement = TriplePattern(AE, TextToken("lectured at"), X)
        q = Query([P1, P2]).replace_patterns([P1], [replacement])
        assert replacement in q.patterns
        assert P1 not in q.patterns
        assert P2 in q.patterns

    def test_expanding_replacement(self):
        added = (
            TriplePattern(AE, AFF, Z),
            TriplePattern(Z, TextToken("housed in"), X),
        )
        q = Query([P1, P2]).replace_patterns([P1], added)
        assert len(q) == 3

    def test_projection_preserved(self):
        replacement = TriplePattern(AE, TextToken("lectured at"), X)
        q = Query([P1, P2], projection=[X]).replace_patterns([P1], [replacement])
        assert q.projection == (X,)

    def test_rejects_unknown_pattern(self):
        with pytest.raises(QueryError):
            Query([P1]).replace_patterns([P2], [P1])

    def test_rejects_removing_all_projection(self):
        with pytest.raises(QueryError):
            Query([P1], projection=[X]).replace_patterns(
                [P1], [TriplePattern(AE, MEMBER, IVY)]
            )


class TestSubstitute:
    def test_binds_constants(self):
        q = Query([TriplePattern(Y, AFF, X), P2]).substitute({X: Resource("IAS")})
        assert all(X not in p.variables() for p in q.patterns)
        assert q.projection == (Y,)

    def test_substituting_every_variable_raises(self):
        with pytest.raises(QueryError):
            Query([P1, P2]).substitute({X: Resource("IAS")})

    def test_rendering(self):
        q = Query([P1, P2], projection=[X], limit=5)
        rendered = q.n3()
        assert "SELECT ?x WHERE" in rendered
        assert "AlbertEinstein affiliation ?x" in rendered
        assert " ; " in rendered
