"""Unit tests for the entity linker."""

import pytest

from repro.kg.world import World, WorldConfig
from repro.openie.corpus import CorpusConfig, CorpusGenerator
from repro.openie.ned import EntityLinker


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=50, seed=3))


@pytest.fixture(scope="module")
def linker(world):
    return EntityLinker(world)


class TestCandidates:
    def test_full_surface_exact(self, world, linker):
        person = world.people[0]
        assert person.id in linker.candidates(person.surface)

    def test_family_name_candidates(self, world, linker):
        person = world.people[0]
        family = person.surface.split()[-1]
        assert person.id in linker.candidates(family)

    def test_case_insensitive(self, world, linker):
        person = world.people[0]
        assert linker.candidates(person.surface.upper())

    def test_unknown_phrase_empty(self, linker):
        assert linker.candidates("Zorbulon the Unpronounceable") == []


class TestLinking:
    def test_full_name_links_confidently(self, world, linker):
        person = world.people[5]
        result = linker.link(person.surface, "")
        assert result.entity_id == person.id
        assert result.confidence >= 0.5

    def test_unknown_stays_unlinked(self, linker):
        result = linker.link("some random phrase", "")
        assert not result.linked

    def test_organizations_link(self, world, linker):
        org = world.universities[0]
        assert linker.link(org.surface, "").entity_id == org.id

    def test_context_helps_family_names(self, world, linker):
        """An ambiguous family name should prefer the person whose related
        entities appear in the sentence context."""
        # Find two people sharing a family name, if any.
        by_family: dict[str, list] = {}
        for person in world.people:
            by_family.setdefault(person.surface.split()[-1].lower(), []).append(person)
        ambiguous = [group for group in by_family.values() if len(group) >= 2]
        if not ambiguous:
            pytest.skip("world has no ambiguous family names at this seed")
        group = ambiguous[0]
        target = group[0]
        employer = world.objects_of("worksAt", target.id)[0]
        context = f"works at {world.entities[employer].surface}"
        result = linker.link(target.surface.split()[-1], context)
        if result.linked:
            assert result.entity_id == target.id

    def test_evaluation_metrics(self, world, linker):
        corpus = CorpusGenerator(
            world, CorpusConfig(num_popularity_documents=30)
        ).generate()
        metrics = linker.evaluate(corpus[:60])
        assert metrics["total_mentions"] > 0
        assert metrics["precision"] >= 0.95  # dictionary NED: near-perfect
        assert 0.5 <= metrics["recall"] <= 1.0  # ambiguity costs recall
