"""Unit tests for the synthetic corpus generator."""

import pytest

from repro.kg.world import World, WorldConfig
from repro.openie.corpus import (
    RELATION_TEMPLATES,
    CorpusConfig,
    CorpusGenerator,
)


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=50, seed=3))


@pytest.fixture(scope="module")
def corpus(world):
    return CorpusGenerator(world, CorpusConfig(num_popularity_documents=60)).generate()


class TestGeneration:
    def test_deterministic(self, world):
        config = CorpusConfig(num_popularity_documents=30)
        a = CorpusGenerator(world, config).generate()
        b = CorpusGenerator(world, config).generate()
        assert [d.text for d in a] == [d.text for d in b]

    def test_doc_ids_unique(self, corpus):
        ids = [d.doc_id for d in corpus]
        assert len(set(ids)) == len(ids)

    def test_coverage_pass_renders_most_facts(self, world, corpus):
        verbalised = {
            (s.fact.relation, s.fact.subject, s.fact.obj)
            for d in corpus
            for s in d.sentences
            if s.fact is not None
        }
        templated_facts = [
            f for f in world.facts if f.relation in RELATION_TEMPLATES
        ]
        covered = sum(
            1
            for f in templated_facts
            if (f.relation, f.subject, f.obj) in verbalised
        )
        assert covered / len(templated_facts) > 0.85

    def test_vocabulary_gap_relations_verbalised(self, world, corpus):
        relations = {
            s.fact.relation
            for d in corpus
            for s in d.sentences
            if s.fact is not None
        }
        assert {"lecturedAt", "housedIn", "prizeFor"} <= relations


class TestMentions:
    def test_mention_offsets_correct(self, corpus):
        for document in corpus[:50]:
            for sentence in document.sentences:
                for mention in sentence.mentions:
                    assert (
                        sentence.text[mention.start : mention.end]
                        == mention.surface
                    )

    def test_mentions_reference_real_entities(self, world, corpus):
        for document in corpus[:50]:
            for sentence in document.sentences:
                for mention in sentence.mentions:
                    assert mention.entity_id in world.entities

    def test_short_names_appear(self, world, corpus):
        """Family-name-only mentions exist (the NED ambiguity source)."""
        short = 0
        for document in corpus:
            for sentence in document.sentences:
                for mention in sentence.mentions:
                    entity = world.entities[mention.entity_id]
                    if entity.kind == "person" and mention.surface != entity.surface:
                        short += 1
        assert short > 0

    def test_literal_dates_rendered_readably(self, world):
        generator = CorpusGenerator(world)
        assert generator._render_literal("1879-03-14") == "March 14 1879"

    def test_every_templated_relation_has_templates(self):
        for templates in RELATION_TEMPLATES.values():
            assert templates
            for template in templates:
                assert "{X}" in template and "{Y}" in template
