"""Unit tests for the tokeniser."""

from repro.openie.tokenizer import Token, detokenize, tokenize


class TestTokenize:
    def test_simple(self):
        assert [t.text for t in tokenize("Einstein lectured at Princeton")] == [
            "Einstein",
            "lectured",
            "at",
            "Princeton",
        ]

    def test_punctuation_split(self):
        tokens = [t.text for t in tokenize("He won. She cheered!")]
        assert tokens == ["He", "won", ".", "She", "cheered", "!"]

    def test_offsets_reconstruct_source(self):
        text = "Einstein  won a   Nobel."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_apostrophes_kept(self):
        tokens = [t.text for t in tokenize("Einstein's theory")]
        assert tokens[0] == "Einstein's"

    def test_hyphen_kept(self):
        tokens = [t.text for t in tokenize("co-authored papers")]
        assert tokens[0] == "co-authored"

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_is_punctuation(self):
        tokens = tokenize("Done.")
        assert not tokens[0].is_punctuation
        assert tokens[1].is_punctuation


class TestDetokenize:
    def test_reconstructs_span(self):
        text = "Einstein won a Nobel"
        tokens = tokenize(text)
        assert detokenize(tokens[1:3], text) == "won a"

    def test_empty(self):
        assert detokenize([], "abc") == ""
