"""Every corpus template must survive the ReVerb pattern.

The XKG's usefulness depends on the extractor recovering the fact from each
verbalisation: if a template drifts out of the V | V P | V W* P pattern, its
relation silently vanishes from the XKG and downstream evaluation shapes
degrade mysteriously.  This test pins the contract: for every relation
template, rendering with dummy proper-noun arguments yields an extraction
linking the two arguments (in either order — some templates are inverted by
design, e.g. "Y supervised X").
"""

import pytest

from repro.openie.corpus import RELATION_TEMPLATES
from repro.openie.reverb import ReverbExtractor

SUBJECT, OBJECT = "Aldora Hemwick", "Brenton Vale"

ALL_TEMPLATES = [
    (relation, template)
    for relation, templates in RELATION_TEMPLATES.items()
    for template in templates
]


@pytest.mark.parametrize("relation,template", ALL_TEMPLATES)
def test_template_extractable(relation, template):
    sentence = template.replace("{X}", SUBJECT).replace("{Y}", OBJECT)
    extractions = ReverbExtractor().extract(sentence)
    assert extractions, f"{relation}: {sentence!r} yields no extraction"
    linked = [
        e
        for e in extractions
        if {e.subject, e.object} == {SUBJECT, OBJECT}
    ]
    assert linked, (
        f"{relation}: {sentence!r} extracted {extractions[0].as_tuple()} "
        "instead of linking the two arguments"
    )


@pytest.mark.parametrize("relation,template", ALL_TEMPLATES)
def test_template_confidence_usable(relation, template):
    """Extraction confidence must clear the XKG builder's default filter."""
    sentence = template.replace("{X}", SUBJECT).replace("{Y}", OBJECT)
    extractions = ReverbExtractor().extract(sentence)
    best = max(e.confidence for e in extractions)
    assert best >= 0.35  # XkgBuilder's default min_confidence


def test_relation_phrases_distinct():
    """Templates of different relations must not collapse to one phrase
    (the miners need distinguishable predicates)."""
    from repro.util.text import match_key

    phrase_owner: dict[tuple, str] = {}
    for relation, template in ALL_TEMPLATES:
        sentence = template.replace("{X}", SUBJECT).replace("{Y}", OBJECT)
        for extraction in ReverbExtractor().extract(sentence):
            key = match_key(extraction.relation, predicate=True)
            owner = phrase_owner.setdefault(key, relation)
            assert owner == relation, (
                f"relations {owner} and {relation} share phrase key {key}"
            )
