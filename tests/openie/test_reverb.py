"""Unit tests for the ReVerb-style extractor."""

import pytest

from repro.openie.reverb import ReverbExtractor


@pytest.fixture()
def extractor():
    return ReverbExtractor()


def triples_of(extractor, sentence):
    return [e.as_tuple() for e in extractor.extract(sentence)]


class TestPatterns:
    def test_plain_verb(self, extractor):
        assert triples_of(extractor, "Einstein married Mileva") == [
            ("Einstein", "married", "Mileva")
        ]

    def test_verb_preposition(self, extractor):
        assert triples_of(extractor, "Einstein lectured at Princeton") == [
            ("Einstein", "lectured at", "Princeton")
        ]

    def test_copula_participle_preposition(self, extractor):
        assert triples_of(extractor, "Einstein was born in Ulm") == [
            ("Einstein", "was born in", "Ulm")
        ]

    def test_longest_match_over_noun_material(self, extractor):
        assert triples_of(extractor, "Einstein was a student of Kleiner") == [
            ("Einstein", "was a student of", "Kleiner")
        ]

    def test_paper_nobel_example(self, extractor):
        results = triples_of(
            extractor, "Einstein won a Nobel for the photoelectric effect"
        )
        assert ("Einstein", "won a Nobel for", "photoelectric effect") in results

    def test_no_verb_no_extraction(self, extractor):
        assert triples_of(extractor, "The institute near Princeton") == []

    def test_punctuation_breaks_clause(self, extractor):
        assert triples_of(extractor, "Einstein. Princeton") == []

    def test_determiner_stripped_from_arguments(self, extractor):
        results = triples_of(extractor, "The institute is housed in Princeton")
        assert results == [("institute", "is housed in", "Princeton")]

    def test_chained_clauses(self, extractor):
        results = triples_of(
            extractor, "Einstein joined IAS and IAS is housed in Princeton"
        )
        # Scanning resumes at the object: two extractions share 'IAS'.
        assert ("Einstein", "joined", "IAS") in results

    def test_max_relation_length(self):
        # With the relation capped at 2 tokens, the 4-token phrase
        # 'was a student of' cannot be extracted; only the degenerate
        # copula reading survives.
        extractor = ReverbExtractor(max_relation_tokens=2)
        relations = [
            rel for _s, rel, _o in triples_of(
                extractor, "Einstein was a student of Kleiner"
            )
        ]
        assert "was a student of" not in relations


class TestConfidence:
    def test_proper_arguments_raise_confidence(self, extractor):
        proper = extractor.extract("Einstein lectured at Princeton")[0]
        common = extractor.extract("the man lectured at the school")[0]
        assert proper.confidence > common.confidence

    def test_confidence_bounds(self, extractor):
        for sentence in (
            "Einstein lectured at Princeton",
            "the man gave a long convoluted speech about things at some place",
        ):
            for extraction in extractor.extract(sentence):
                assert 0.05 <= extraction.confidence <= 0.95

    def test_min_confidence_filters(self):
        strict = ReverbExtractor(min_confidence=0.9)
        assert strict.extract("the man lectured at the school") == []

    def test_sentence_recorded(self, extractor):
        sentence = "Einstein lectured at Princeton"
        assert extractor.extract(sentence)[0].sentence == sentence
