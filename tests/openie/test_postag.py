"""Unit tests for the POS tagger."""

from repro.openie.postag import tag_tokens
from repro.openie.tokenizer import tokenize


def tags_of(sentence: str) -> list[str]:
    return [t.tag for t in tag_tokens(tokenize(sentence))]


class TestTagger:
    def test_proper_nouns_mid_sentence(self):
        assert tags_of("Einstein lectured at Princeton") == [
            "NNP",
            "VBD",
            "IN",
            "NNP",
        ]

    def test_copula_participle(self):
        assert tags_of("Einstein was born in Ulm") == [
            "NNP",
            "VBD",
            "VBN",
            "IN",
            "NNP",
        ]

    def test_determiners(self):
        tags = tags_of("the a an his her")
        assert all(t == "DT" for t in tags)

    def test_prepositions(self):
        tags = tags_of("in at of for with under")
        assert all(t == "IN" for t in tags)

    def test_numbers(self):
        assert tags_of("1879")[0] == "CD"
        assert tags_of("14th")[0] == "CD"

    def test_ed_suffix_heuristic(self):
        assert tags_of("he relocated")[-1] == "VBD"

    def test_ing_suffix_heuristic(self):
        assert tags_of("he was travelling")[-1] == "VBG"

    def test_ly_suffix_heuristic(self):
        assert tags_of("he spoke quietly")[-1] == "RB"

    def test_plural_nouns(self):
        assert tags_of("many lectures")[-1] == "NNS"

    def test_punctuation_tag(self):
        assert tags_of("Done .")[-1] == "."

    def test_pronouns(self):
        assert tags_of("she won")[0] == "PRP"

    def test_verbs_third_person(self):
        assert tags_of("Einstein works at Princeton")[1] == "VBZ"

    def test_sentence_initial_capital_not_forced_nnp(self):
        # 'The' at sentence start must stay DT despite capitalisation.
        assert tags_of("The institute")[0] == "DT"
