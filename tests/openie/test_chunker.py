"""Unit tests for NP chunking."""

from repro.openie.chunker import chunk_noun_phrases
from repro.openie.postag import tag_tokens
from repro.openie.tokenizer import tokenize


def chunks_of(sentence: str) -> list[str]:
    return [np.text for np in chunk_noun_phrases(tag_tokens(tokenize(sentence)))]


class TestChunker:
    def test_simple_proper_nouns(self):
        assert chunks_of("Einstein lectured at Princeton University") == [
            "Einstein",
            "Princeton University",
        ]

    def test_determiner_adjective_noun(self):
        assert chunks_of("He joined the famous quantum institute") == [
            "the famous quantum institute"
        ]

    def test_no_noun_no_chunk(self):
        assert chunks_of("was born in") == []

    def test_numbers_inside_chunks(self):
        chunks = chunks_of("Einstein was born on March 14 1879")
        assert "March 14 1879" in chunks

    def test_punctuation_breaks_chunk(self):
        chunks = chunks_of("Einstein, Curie")
        assert chunks == ["Einstein", "Curie"]

    def test_determiner_stripping(self):
        tagged = tag_tokens(tokenize("the Institute opened"))
        nps = chunk_noun_phrases(tagged)
        assert nps[0].text == "the Institute"
        assert nps[0].text_without_determiner == "Institute"

    def test_is_proper(self):
        tagged = tag_tokens(tokenize("He visited Princeton University"))
        nps = chunk_noun_phrases(tagged)
        assert nps[-1].is_proper

    def test_head_is_last_noun(self):
        tagged = tag_tokens(tokenize("the famous quantum institute"))
        nps = chunk_noun_phrases(tagged)
        assert nps[0].head == "institute"

    def test_spans_are_token_indexes(self):
        tagged = tag_tokens(tokenize("Einstein joined Princeton"))
        nps = chunk_noun_phrases(tagged)
        assert (nps[0].start, nps[0].end) == (0, 1)
        assert (nps[1].start, nps[1].end) == (2, 3)
