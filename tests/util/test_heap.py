"""Unit tests for TopKHeap and DistinctTopKTracker."""

import pytest

from repro.util.heap import DistinctTopKTracker, TopKHeap


class TestTopKHeap:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_keeps_k_best(self):
        heap = TopKHeap(3)
        for score in [0.1, 0.9, 0.5, 0.7, 0.3]:
            heap.push(score, f"item-{score}")
        kept = [score for score, _item in heap.items_descending()]
        assert kept == [0.9, 0.7, 0.5]

    def test_threshold_zero_until_full(self):
        heap = TopKHeap(2)
        heap.push(0.9, "a")
        assert heap.threshold == 0.0
        heap.push(0.5, "b")
        assert heap.threshold == 0.5

    def test_push_returns_acceptance(self):
        heap = TopKHeap(2)
        assert heap.push(0.5, "a")
        assert heap.push(0.6, "b")
        assert not heap.push(0.1, "c")
        assert heap.push(0.7, "d")

    def test_would_accept(self):
        heap = TopKHeap(1)
        heap.push(0.5, "a")
        assert heap.would_accept(0.6)
        assert not heap.would_accept(0.5)
        assert not heap.would_accept(0.4)

    def test_ties_keep_earlier_insertion(self):
        heap = TopKHeap(1)
        heap.push(0.5, "first")
        heap.push(0.5, "second")
        assert heap.items_descending() == [(0.5, "first")]

    def test_descending_order(self):
        heap = TopKHeap(5)
        for score in [0.2, 0.8, 0.4, 0.6, 0.1, 0.9]:
            heap.push(score, score)
        scores = [s for s, _ in heap.items_descending()]
        assert scores == sorted(scores, reverse=True)


class TestDistinctTopKTracker:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DistinctTopKTracker(0)

    def test_threshold_zero_until_k_distinct(self):
        tracker = DistinctTopKTracker(2)
        tracker.offer("a", 0.9)
        assert tracker.threshold == 0.0
        tracker.offer("a", 0.95)  # same key, still one distinct
        assert tracker.threshold == 0.0
        tracker.offer("b", 0.5)
        assert tracker.threshold == 0.5

    def test_improving_a_key_updates_threshold(self):
        tracker = DistinctTopKTracker(2)
        tracker.offer("a", 0.9)
        tracker.offer("b", 0.5)
        tracker.offer("b", 0.8)  # b improves
        assert tracker.threshold == 0.8

    def test_eviction_of_weakest(self):
        tracker = DistinctTopKTracker(2)
        tracker.offer("a", 0.3)
        tracker.offer("b", 0.5)
        tracker.offer("c", 0.7)  # evicts a
        assert tracker.threshold == 0.5
        tracker.offer("d", 0.6)  # evicts b
        assert tracker.threshold == 0.6

    def test_low_offer_ignored_when_full(self):
        tracker = DistinctTopKTracker(2)
        tracker.offer("a", 0.8)
        tracker.offer("b", 0.9)
        tracker.offer("c", 0.1)
        assert tracker.threshold == 0.8

    def test_lower_score_for_known_key_ignored(self):
        tracker = DistinctTopKTracker(1)
        tracker.offer("a", 0.8)
        tracker.offer("a", 0.3)
        assert tracker.threshold == 0.8

    def test_reofferring_evicted_key(self):
        tracker = DistinctTopKTracker(1)
        tracker.offer("a", 0.5)
        tracker.offer("b", 0.9)  # evicts a
        tracker.offer("a", 1.0)  # a comes back stronger
        assert tracker.threshold == 1.0

    def test_matches_brute_force(self):
        import heapq
        import random

        rng = random.Random(13)
        tracker = DistinctTopKTracker(5)
        best: dict[int, float] = {}
        for _ in range(500):
            key = rng.randint(0, 30)
            score = max(best.get(key, 0.0), rng.random())
            best[key] = score
            tracker.offer(key, score)
            expected = sorted(best.values(), reverse=True)
            expected_threshold = expected[4] if len(expected) >= 5 else 0.0
            assert tracker.threshold == pytest.approx(expected_threshold)
