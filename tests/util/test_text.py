"""Unit tests for text normalisation utilities."""

import pytest

from repro.util.text import (
    camel_to_words,
    dice,
    is_subsequence,
    jaccard,
    match_key,
    normalize_phrase,
    normalize_token,
    overlap_coefficient,
    stem,
    tokenize_phrase,
)


class TestStem:
    def test_irregular_forms(self):
        assert stem("won") == "win"
        assert stem("taught") == "teach"
        assert stem("studied") == "study"

    def test_ing_suffix(self):
        assert stem("lecturing") == "lectur"

    def test_ed_suffix(self):
        assert stem("lectured") == "lectur"

    def test_plural_suffix(self):
        assert stem("lectures") == "lectur"

    def test_short_tokens_unchanged(self):
        assert stem("in") == "in"
        assert stem("at") == "at"

    def test_double_s_not_stripped(self):
        assert stem("glass") == "glass"

    def test_conflates_verb_forms(self):
        assert stem("lectured") == stem("lectures") == stem("lecturing")


class TestNormalize:
    def test_token_lowercase_and_punctuation(self):
        assert normalize_token("Nobel,") == "nobel"
        assert normalize_token("U.S.A.") == "usa"

    def test_phrase_whitespace_collapse(self):
        assert normalize_phrase("  Won a   NOBEL for ") == "won a nobel for"

    def test_tokenize_drops_empty(self):
        assert tokenize_phrase("a ,, b") == ["a", "b"]

    def test_normalize_idempotent(self):
        once = normalize_phrase("Won a Nobel For")
        assert normalize_phrase(once) == once


class TestMatchKey:
    def test_drops_articles_and_stems(self):
        assert match_key("won a Nobel for") == ("win", "nobel", "for")

    def test_predicate_drops_copulas(self):
        assert match_key("was born in", predicate=True) == ("born", "in")

    def test_keeps_prepositions(self):
        key = match_key("housed in", predicate=True)
        assert key[-1] == "in"

    def test_same_key_for_paraphrases(self):
        a = match_key("lectured at", predicate=True)
        b = match_key("lectures at", predicate=True)
        assert a == b

    def test_empty_phrase_empty_key(self):
        assert match_key("the a an", predicate=True) == ()


class TestIsSubsequence:
    def test_contiguous_inside(self):
        assert is_subsequence(("b", "c"), ("a", "b", "c", "d"))

    def test_non_contiguous_rejected(self):
        assert not is_subsequence(("b", "d"), ("a", "b", "c", "d"))

    def test_empty_needle(self):
        assert is_subsequence((), ("a",))

    def test_needle_longer_than_haystack(self):
        assert not is_subsequence(("a", "b"), ("a",))

    def test_identical(self):
        assert is_subsequence(("a", "b"), ("a", "b"))


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_jaccard_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_dice(self):
        assert dice({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_overlap_coefficient(self):
        assert overlap_coefficient({1, 2}, {2}) == 1.0

    def test_overlap_empty_side(self):
        assert overlap_coefficient(set(), {1}) == 0.0


class TestCamelToWords:
    def test_simple(self):
        assert camel_to_words("bornIn") == "born in"

    def test_pascal(self):
        assert camel_to_words("AlbertEinstein") == "albert einstein"

    def test_with_digits(self):
        assert camel_to_words("Yago2s") == "yago2s"

    def test_acronym_run(self):
        assert camel_to_words("IAS") == "ias"
