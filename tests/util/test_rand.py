"""Unit tests for seeded randomness helpers."""

from repro.util.rand import SeededRng, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_diverge(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_independent_of_parent_draws(self):
        parent1 = SeededRng(7)
        fork_before = parent1.fork("child")
        stream_before = [fork_before.random() for _ in range(5)]

        parent2 = SeededRng(7)
        parent2.random()  # extra draw on the parent
        fork_after = parent2.fork("child")
        stream_after = [fork_after.random() for _ in range(5)]

        assert stream_before == stream_after

    def test_forks_with_different_labels_differ(self):
        parent = SeededRng(7)
        a = parent.fork("a")
        b = parent.fork("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_chance_extremes(self):
        rng = SeededRng(3)
        assert not any(rng.chance(0.0) for _ in range(20))
        assert all(rng.chance(1.0) for _ in range(20))

    def test_zipf_index_bounds(self):
        rng = SeededRng(5)
        draws = [rng.zipf_index(10) for _ in range(200)]
        assert all(0 <= d < 10 for d in draws)

    def test_zipf_skews_to_head(self):
        rng = SeededRng(5)
        draws = [rng.zipf_index(50) for _ in range(2000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > tail * 3

    def test_zipf_rejects_empty(self):
        rng = SeededRng(5)
        try:
            rng.zipf_index(0)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_subset_probability_extremes(self):
        rng = SeededRng(9)
        assert rng.subset(range(10), 0.0) == []
        assert rng.subset(range(10), 1.0) == list(range(10))
