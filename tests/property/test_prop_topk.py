"""Property-based tests: top-k invariants under random stores and rules.

The central invariant: for any store, rule set, and query, the adaptive
processor's answer list is a valid top-k of the exhaustive evaluation —
identical descending score profile, every answer individually correct.
"""

from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_query, parse_rule
from repro.core.terms import Resource, TextToken
from repro.core.triples import Triple
from repro.relax.rules import RuleSet
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor

resources = st.integers(0, 10).map(lambda i: Resource(f"E{i}"))
predicates = st.one_of(
    st.integers(0, 3).map(lambda i: Resource(f"p{i}")),
    st.just(TextToken("works at")),
)
observations = st.tuples(
    st.builds(Triple, resources, predicates, resources),
    st.sampled_from([0.5, 0.8, 1.0]),
    st.integers(min_value=1, max_value=3),
)

rule_texts = st.lists(
    st.tuples(
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'"]),
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'"]),
        st.sampled_from([0.4, 0.6, 0.9]),
        st.booleans(),
    ).filter(lambda r: r[0] != r[1]),
    max_size=4,
)

queries = st.sampled_from(
    [
        "?x p0 ?y",
        "E1 p1 ?y",
        "?x p2 E2",
        "?x 'works at' ?y",
        "?x p0 ?y ; ?y p1 ?z",
    ]
)


def build(entries, rule_specs):
    store = TripleStore()
    for triple, confidence, count in entries:
        store.add(triple, confidence=confidence, count=count)
    store.freeze()
    rules = RuleSet()
    for source, target, weight, inverted in rule_specs:
        shape = "?y {t} ?x" if inverted else "?x {t} ?y"
        rules.add(
            parse_rule(f"?x {source} ?y => {shape.format(t=target)} @ {weight}")
        )
    return store, rules


@settings(max_examples=50, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40), rule_texts, queries)
def test_adaptive_is_valid_topk_of_exhaustive(entries, rule_specs, query_text):
    store, rules = build(entries, rule_specs)
    query = parse_query(query_text)
    k = 4
    fast = TopKProcessor(store, rules=rules).query(query, k)
    slow = TopKProcessor(
        store, rules=rules, config=ProcessorConfig(exhaustive=True)
    ).query(query, 10_000)
    fast_sig = [(a.binding, round(a.score, 9)) for a in fast]
    slow_sig = [(a.binding, round(a.score, 9)) for a in slow]
    assert len(fast_sig) == min(k, len(slow_sig))
    assert [s for _b, s in fast_sig] == [s for _b, s in slow_sig[: len(fast_sig)]]
    slow_set = set(slow_sig)
    for entry in fast_sig:
        assert entry in slow_set


@settings(max_examples=50, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40), rule_texts, queries)
def test_scores_bounded_and_descending(entries, rule_specs, query_text):
    store, rules = build(entries, rule_specs)
    answers = TopKProcessor(store, rules=rules).query(parse_query(query_text), 10)
    scores = [a.score for a in answers]
    assert all(0.0 < s <= 1.0 for s in scores)
    assert scores == sorted(scores, reverse=True)


@settings(max_examples=50, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40), rule_texts, queries)
def test_bindings_unique(entries, rule_specs, query_text):
    store, rules = build(entries, rule_specs)
    answers = TopKProcessor(store, rules=rules).query(parse_query(query_text), 10)
    bindings = [a.binding for a in answers]
    assert len(set(bindings)) == len(bindings)


@settings(max_examples=30, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40), rule_texts, queries)
def test_relaxation_never_loses_exact_answers(entries, rule_specs, query_text):
    """Adding rules may add answers but must keep every strict answer."""
    store, rules = build(entries, rule_specs)
    query = parse_query(query_text)
    strict = TopKProcessor(
        store,
        config=ProcessorConfig(use_relaxation=False),
    ).query(query, 10_000)
    relaxed = TopKProcessor(store, rules=rules).query(query, 10_000)
    relaxed_bindings = {a.binding for a in relaxed}
    for answer in strict:
        assert answer.binding in relaxed_bindings


@settings(max_examples=30, deadline=None)
@given(st.lists(observations, min_size=1, max_size=30), queries)
def test_determinism(entries, query_text):
    store, rules = build(entries, [])
    query = parse_query(query_text)
    a = TopKProcessor(store, rules=rules).query(query, 5)
    b = TopKProcessor(store, rules=rules).query(query, 5)
    assert [(x.binding, x.score) for x in a] == [(x.binding, x.score) for x in b]
