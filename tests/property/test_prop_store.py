"""Property-based tests for the triple store and its indexes."""

from hypothesis import given, settings, strategies as st

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple, TriplePattern
from repro.storage.store import TripleStore

X, Y, P = Variable("x"), Variable("y"), Variable("p")

resources = st.integers(0, 15).map(lambda i: Resource(f"E{i}"))
predicates = st.one_of(
    st.integers(0, 4).map(lambda i: Resource(f"p{i}")),
    st.sampled_from([TextToken("works at"), TextToken("born in")]),
)
triples = st.builds(Triple, resources, predicates, resources)
observations = st.tuples(
    triples,
    st.floats(min_value=0.1, max_value=1.0),
    st.integers(min_value=1, max_value=5),
)


def build_store(entries) -> TripleStore:
    store = TripleStore()
    for triple, confidence, count in entries:
        store.add(triple, confidence=confidence, count=count)
    return store.freeze()


@settings(max_examples=60, deadline=None)
@given(st.lists(observations, min_size=1, max_size=60))
def test_distinct_triples_deduplicated(entries):
    store = build_store(entries)
    assert len(store) == len({t for t, _c, _n in entries})


@settings(max_examples=60, deadline=None)
@given(st.lists(observations, min_size=1, max_size=60))
def test_counts_accumulate(entries):
    store = build_store(entries)
    totals: dict = {}
    for triple, _conf, count in entries:
        totals[triple] = totals.get(triple, 0) + count
    for triple, expected in totals.items():
        assert store.lookup(triple).count == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(observations, min_size=1, max_size=60))
def test_posting_lists_sorted_for_every_pattern(entries):
    store = build_store(entries)
    patterns = [TriplePattern(X, P, Y)]
    patterns += [
        TriplePattern(X, Resource(f"p{i}"), Y) for i in range(5)
    ]
    for triple, _c, _n in entries[:5]:
        patterns.append(TriplePattern(triple.s, P, Y))
        patterns.append(TriplePattern(X, P, triple.o))
        patterns.append(TriplePattern(triple.s, triple.p, Y))
    for pattern in patterns:
        weights = [store.weight(i) for i in store.sorted_ids(pattern)]
        assert weights == sorted(weights, reverse=True)


@settings(max_examples=60, deadline=None)
@given(st.lists(observations, min_size=1, max_size=60))
def test_pattern_matches_consistent_with_scan(entries):
    """Index lookups agree with a brute-force scan for every signature."""
    store = build_store(entries)
    all_records = list(store.records())
    sample = entries[0][0]
    patterns = [
        TriplePattern(sample.s, P, Y),
        TriplePattern(X, sample.p, Y),
        TriplePattern(X, P, sample.o),
        TriplePattern(sample.s, sample.p, Y),
        TriplePattern(sample.s, P, sample.o),
        TriplePattern(X, sample.p, sample.o),
        TriplePattern(sample.s, sample.p, sample.o),
    ]
    for pattern in patterns:
        via_index = {id(r) for r in store.matches(pattern)}
        via_scan = {
            id(r) for r in all_records if pattern.matches(r.triple)
        }
        assert via_index == via_scan


@settings(max_examples=40, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40))
def test_observation_mass_additive(entries):
    store = build_store(entries)
    pattern = TriplePattern(X, P, Y)
    assert abs(
        store.observation_mass(pattern) - store.total_observations()
    ) < 1e-9


def _probe_patterns(entries):
    sample = entries[0][0]
    return [
        TriplePattern(X, P, Y),
        TriplePattern(sample.s, P, Y),
        TriplePattern(X, sample.p, Y),
        TriplePattern(X, P, sample.o),
        TriplePattern(sample.s, sample.p, Y),
        TriplePattern(sample.s, sample.p, sample.o),
    ]


@settings(max_examples=40, deadline=None)
@given(entries=st.lists(observations, min_size=1, max_size=40))
def test_snapshot_round_trip_byte_identical(tmp_path_factory, entries):
    """freeze → snapshot → mmap-load preserves postings, weights, records."""
    from repro.storage.snapshot import load_snapshot, save_snapshot

    store = build_store(entries)
    path = tmp_path_factory.mktemp("snap") / "store.snap"
    save_snapshot(store, path)
    loaded = load_snapshot(path)
    assert len(loaded) == len(store)
    assert list(loaded.weights()) == list(store.weights())
    for pattern in _probe_patterns(entries):
        assert bytes(loaded.sorted_ids(pattern)) == bytes(store.sorted_ids(pattern))
    for tid in range(len(store)):
        assert loaded.record(tid).triple == store.record(tid).triple
        assert loaded.record(tid).confidence == store.record(tid).confidence
        assert loaded.record(tid).count == store.record(tid).count


@settings(max_examples=40, deadline=None)
@given(st.lists(observations, min_size=1, max_size=40))
def test_sharded_postings_identical_to_columnar(entries):
    """Hash-partitioned segments merge back to the exact global order."""
    columnar = build_store(entries)
    sharded = TripleStore(backend="sharded")
    for triple, confidence, count in entries:
        sharded.add(triple, confidence=confidence, count=count)
    sharded.freeze()
    for pattern in _probe_patterns(entries):
        assert list(sharded.sorted_ids(pattern)) == list(
            columnar.sorted_ids(pattern)
        )
