"""Property: parallel segment execution is byte-identical to serial.

The whole parallel refactor (batched merged pulls, executor prefetch,
cursor priming) is only allowed to change *when* posting heads materialise,
never *what* a query answers.  The property pins that: for random stores
and random queries, an engine with 4 workers and a random pull batch
produces bindings, scores and order bit-identical to the degenerate serial
reference (``parallelism=1``, ``merge_batch=1`` — item-at-a-time pulls on
the consuming thread), across eager ``ask``, random stream splits and
``ask_many`` batches.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple

X, Y = Variable("x"), Variable("y")

PREDICATES = ["bornIn", "livesIn", "affiliation", "type"]
ENTITIES = [f"E{i}" for i in range(12)]

triples = st.lists(
    st.tuples(
        st.sampled_from(ENTITIES),
        st.sampled_from(PREDICATES),
        st.sampled_from(ENTITIES),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=4,
    max_size=40,
)

queries = st.lists(
    st.sampled_from(
        [
            "?x bornIn ?y",
            "?x affiliation ?y",
            "?x ?p ?y",
            "?x bornIn ?y ; ?y type ?z",
            f"{ENTITIES[0]} ?p ?y",
        ]
    ),
    min_size=1,
    max_size=3,
)


def _engines(rows, batch):
    def build(parallelism, merge_batch):
        engine = TriniT.from_triples(
            [],
            [
                (Triple(Resource(s), Resource(p), Resource(o)), None, conf)
                for s, p, o, conf, count in rows
                for _ in range(count)
            ],
            config=EngineConfig(
                storage_backend="sharded",
                parallelism=parallelism,
                merge_batch=merge_batch,
            ),
        )
        return engine

    return build(1, 1), build(4, batch)


def signature(answers):
    return [(a.binding, a.score) for a in answers]


@settings(max_examples=25, deadline=None)
@given(
    rows=triples,
    texts=queries,
    k=st.integers(min_value=1, max_value=12),
    batch=st.integers(min_value=1, max_value=9),
    split=st.integers(min_value=1, max_value=6),
)
def test_parallel_byte_identical_to_serial(rows, texts, k, batch, split):
    serial, parallel = _engines(rows, batch)
    try:
        for text in texts:
            reference = signature(serial.ask(text, k=k))
            # Eager ask under the parallel configuration.
            assert signature(parallel.ask(text, k=k)) == reference
            # Stream pagination: batches concatenate to the eager prefix.
            stream = parallel.stream(text)
            collected = list(stream.next_k(min(split, k)))
            while len(collected) < k:
                got = stream.next_k(min(split, k - len(collected)))
                if not got:
                    break
                collected.extend(got)
            assert signature(collected) == reference[: len(collected)]
        # Batch fan-out over the shared pool.
        batch_results = parallel.ask_many(texts, k=k)
        assert [signature(r) for r in batch_results] == [
            signature(serial.ask(text, k=k)) for text in texts
        ]
    finally:
        serial.close()
        parallel.close()
