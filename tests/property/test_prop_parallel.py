"""Property: parallel segment execution is byte-identical to serial.

The whole parallel refactor (batched merged pulls, executor prefetch,
cursor priming, adaptive batch sizing, the process-pool segment executor)
is only allowed to change *when* and *where* posting heads materialise,
never *what* a query answers.  The property pins that: for random stores
and random queries, an engine with 4 workers under any ``executor_kind``
(serial / thread / process), any storage backend (dict / columnar /
sharded) and any merge batch policy (fixed sizes or adaptive ``None``)
and any posting-block policy (fixed block sizes or adaptive ``None``)
produces bindings, scores and order bit-identical to the degenerate serial
reference (``executor_kind="serial"``, ``merge_batch=1``, ``block_size=1``
— item-at-a-time pulls *and* per-item scoring on the consuming thread),
across eager ``ask``, random stream splits and ``ask_many`` batches.  The
block dimension pins the execution kernels (:mod:`repro.topk.kernels`):
block decode, batched scoring and the hot-block cache may only change how
many heads are staged per step, never a single emitted bit.

In-memory stores have no snapshot directory, so ``executor_kind="process"``
exercises the documented graceful fallback to threads here; the
deterministic test at the bottom pins the same identity for a *real*
process pool over a directory snapshot (workers serving posting heads from
their own mappings).
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple

X, Y = Variable("x"), Variable("y")

PREDICATES = ["bornIn", "livesIn", "affiliation", "type"]
ENTITIES = [f"E{i}" for i in range(12)]

triples = st.lists(
    st.tuples(
        st.sampled_from(ENTITIES),
        st.sampled_from(PREDICATES),
        st.sampled_from(ENTITIES),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=4,
    max_size=40,
)

queries = st.lists(
    st.sampled_from(
        [
            "?x bornIn ?y",
            "?x affiliation ?y",
            "?x ?p ?y",
            "?x bornIn ?y ; ?y type ?z",
            f"{ENTITIES[0]} ?p ?y",
        ]
    ),
    min_size=1,
    max_size=3,
)


def _build(rows, backend, **config):
    return TriniT.from_triples(
        [],
        [
            (Triple(Resource(s), Resource(p), Resource(o)), None, conf)
            for s, p, o, conf, count in rows
            for _ in range(count)
        ],
        config=EngineConfig(storage_backend=backend, **config),
    )


def signature(answers):
    return [(a.binding, a.score) for a in answers]


@settings(max_examples=25, deadline=None)
@given(
    rows=triples,
    texts=queries,
    k=st.integers(min_value=1, max_value=12),
    backend=st.sampled_from(["dict", "columnar", "sharded"]),
    kind=st.sampled_from(["serial", "thread", "process"]),
    batch=st.sampled_from([None, 1, 2, 7]),
    block=st.sampled_from([None, 1, 3, 16]),
    split=st.integers(min_value=1, max_value=6),
)
def test_parallel_byte_identical_to_serial(
    rows, texts, k, backend, kind, batch, block, split
):
    serial = _build(
        rows,
        backend,
        executor_kind="serial",
        parallelism=1,
        merge_batch=1,
        block_size=1,
    )
    parallel = _build(
        rows,
        backend,
        executor_kind=kind,
        parallelism=4,
        merge_batch=batch,
        block_size=block,
    )
    try:
        for text in texts:
            reference = signature(serial.ask(text, k=k))
            # Eager ask under the parallel configuration.
            assert signature(parallel.ask(text, k=k)) == reference
            # Stream pagination: batches concatenate to the eager prefix.
            stream = parallel.stream(text)
            collected = list(stream.next_k(min(split, k)))
            while len(collected) < k:
                got = stream.next_k(min(split, k - len(collected)))
                if not got:
                    break
                collected.extend(got)
            assert signature(collected) == reference[: len(collected)]
        # Batch fan-out over the shared pool.
        batch_results = parallel.ask_many(texts, k=k)
        assert [signature(r) for r in batch_results] == [
            signature(serial.ask(text, k=k)) for text in texts
        ]
    finally:
        serial.close()
        parallel.close()


@settings(max_examples=20, deadline=None)
@given(
    rows=triples,
    texts=queries,
    k=st.integers(min_value=1, max_value=12),
    backend=st.sampled_from(["dict", "columnar", "sharded"]),
    kind=st.sampled_from(["serial", "thread", "process"]),
    batch=st.sampled_from([None, 1, 2, 7]),
    block=st.sampled_from([None, 1, 3, 16]),
    cut=st.integers(min_value=0, max_value=40),
)
def test_live_ingestion_byte_identical_to_fresh_build(
    rows, texts, k, backend, kind, batch, block, cut
):
    """(frozen + delta) == fresh build, and still after compaction.

    Freeze a prefix of the statements, live-ingest the rest through
    ``engine.ingest()``, and compare every answer bit for bit against a
    serial engine freshly built from the union — then compact (the
    in-memory rebuild path for all three backends) and compare again.
    Rule miners are disabled: they run once at construction, so a
    prefix-built engine may legitimately mine different rules than a
    union-built one; the property pins the storage/merge contract.
    """
    no_mining = dict(
        mine_arg_overlap=False, mine_chains=False, mine_inversions=False
    )
    cut = min(cut, len(rows))
    prefix = rows[:cut]
    frozen_keys = {(s, p, o) for s, p, o, _, _ in prefix}
    # Duplicate evidence for a *frozen* statement keeps its frozen sort
    # weight until compaction (documented eventual consistency), so the
    # byte-identity property quantifies over genuinely new statements.
    suffix = [row for row in rows[cut:] if (row[0], row[1], row[2]) not in frozen_keys]
    reference = _build(
        prefix + suffix,
        backend,
        executor_kind="serial",
        parallelism=1,
        merge_batch=1,
        block_size=1,
        **no_mining,
    )
    live = _build(
        prefix,
        backend,
        executor_kind=kind,
        parallelism=4,
        merge_batch=batch,
        block_size=block,
        **no_mining,
    )
    try:
        for s, p, o, conf, count in suffix:
            for _ in range(count):
                live.ingest(
                    [Triple(Resource(s), Resource(p), Resource(o))],
                    confidence=conf,
                )
        assert live.store.delta_size == len(
            {(s, p, o) for s, p, o, _, _ in suffix}
        )
        for text in texts:
            assert signature(live.ask(text, k=k)) == signature(
                reference.ask(text, k=k)
            )
        live.compact()
        assert not live.store.has_delta
        for text in texts:
            assert signature(live.ask(text, k=k)) == signature(
                reference.ask(text, k=k)
            )
    finally:
        reference.close()
        live.close()


def test_process_pool_engine_byte_identical(tmp_path):
    """A real process executor over a directory snapshot, not the fallback.

    Deterministic rather than property-driven: worker processes are too
    slow to spin up per hypothesis example.  Covers the full surface once —
    eager ask, stream resumption and ask_many — against the serial
    reference, and asserts the engine really did run in process mode.
    """
    from repro.storage.snapshot import save_snapshot

    rows = [
        (f"E{i % 17}", PREDICATES[i % 4], f"E{(i * 7) % 17}", 0.05 + (i % 19) / 20, 1)
        for i in range(300)
    ]
    builder = _build(rows, "sharded", executor_kind="serial", parallelism=1)
    path = tmp_path / "store.snapd"
    save_snapshot(builder.store, path)
    builder.close()

    texts = ["?x bornIn ?y", "?x ?p ?y", "?x bornIn ?y ; ?y type ?z", "E1 ?p ?y"]
    with TriniT.open(
        path, config=EngineConfig(executor_kind="serial", merge_batch=1)
    ) as serial, TriniT.open(
        path, config=EngineConfig(executor_kind="process", parallelism=4)
    ) as parallel:
        assert parallel.executor_kind == "process"
        assert parallel._process_executor is not None
        for text in texts:
            reference = signature(serial.ask(text, k=20))
            assert signature(parallel.ask(text, k=20)) == reference
            stream = parallel.stream(text)
            collected = list(stream.next_k(7))
            collected.extend(stream.next_k(13))
            assert signature(collected) == reference[: len(collected)]
        assert [signature(r) for r in parallel.ask_many(texts, k=9)] == [
            signature(serial.ask(text, k=9)) for text in texts
        ]
