"""Property-based tests for relaxation rules and rewriting."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_query, parse_rule
from repro.relax.rewriting import RewriteEngine, canonical_form
from repro.relax.rules import RuleSet

predicate_names = st.sampled_from(["p0", "p1", "p2", "p3", "'works at'"])
weights = st.sampled_from([0.2, 0.5, 0.8, 1.0])


@st.composite
def rules(draw):
    source = draw(predicate_names)
    target = draw(predicate_names.filter(lambda t: t != source))
    weight = draw(weights)
    inverted = draw(st.booleans())
    shape = "?y {t} ?x" if inverted else "?x {t} ?y"
    return parse_rule(f"?x {source} ?y => {shape.format(t=target)} @ {weight}")


rule_sets = st.lists(rules(), max_size=6).map(RuleSet)
query_texts = st.sampled_from(
    ["?a p0 ?b", "E p1 ?b", "?a p2 ?b ; ?b p3 ?c", "?a 'works at' ?b"]
)


class TestRewriteProperties:
    @settings(max_examples=60, deadline=None)
    @given(rule_sets, query_texts, st.integers(0, 2), st.integers(1, 30))
    def test_budgets_respected(self, rule_set, query_text, depth, max_rewrites):
        engine = RewriteEngine(rule_set, max_depth=depth, max_rewrites=max_rewrites)
        rewrites = engine.rewrites(parse_query(query_text))
        assert 1 <= len(rewrites) <= max_rewrites
        assert all(r.depth <= depth for r in rewrites)

    @settings(max_examples=60, deadline=None)
    @given(rule_sets, query_texts)
    def test_weights_descending_and_bounded(self, rule_set, query_text):
        engine = RewriteEngine(rule_set, max_depth=2, max_rewrites=50)
        rewrites = engine.rewrites(parse_query(query_text))
        weights = [r.weight for r in rewrites]
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)
        assert all(0 < w <= 1 for w in weights)

    @settings(max_examples=60, deadline=None)
    @given(rule_sets, query_texts)
    def test_no_duplicate_canonical_forms(self, rule_set, query_text):
        engine = RewriteEngine(rule_set, max_depth=2, max_rewrites=50)
        rewrites = engine.rewrites(parse_query(query_text))
        forms = [canonical_form(r.query) for r in rewrites]
        assert len(set(forms)) == len(forms)

    @settings(max_examples=60, deadline=None)
    @given(rule_sets, query_texts)
    def test_weight_is_product_of_applied_rules(self, rule_set, query_text):
        engine = RewriteEngine(rule_set, max_depth=2, max_rewrites=50)
        for rewriting in engine.rewrites(parse_query(query_text)):
            product = 1.0
            for application in rewriting.applications:
                product *= application.rule.weight
            assert abs(product - rewriting.weight) < 1e-12

    @settings(max_examples=60, deadline=None)
    @given(rule_sets, query_texts)
    def test_projection_always_preserved(self, rule_set, query_text):
        query = parse_query(query_text)
        engine = RewriteEngine(rule_set, max_depth=2, max_rewrites=50)
        for rewriting in engine.rewrites(query):
            rewritten_vars = set(rewriting.query.variables())
            assert set(rewriting.query.projection) <= rewritten_vars


class TestRuleApplicationProperties:
    @settings(max_examples=80, deadline=None)
    @given(rules(), query_texts)
    def test_application_changes_query(self, rule, query_text):
        query = parse_query(query_text)
        fresh = (f"f{i}" for i in itertools.count())
        for application in rule.apply(query, fresh):
            assert set(application.query.patterns) != set(query.patterns)

    @settings(max_examples=80, deadline=None)
    @given(rules(), query_texts)
    def test_removed_patterns_came_from_query(self, rule, query_text):
        query = parse_query(query_text)
        fresh = (f"f{i}" for i in itertools.count())
        for application in rule.apply(query, fresh):
            for removed in application.removed:
                assert removed in query.patterns
