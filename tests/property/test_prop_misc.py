"""Property-based tests for metrics, heaps, parsing, and text utilities."""

from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_query
from repro.core.terms import Resource, TextToken, Variable
from repro.eval.metrics import dcg, ndcg_at_k, precision_at_k, reciprocal_rank
from repro.util.heap import DistinctTopKTracker, TopKHeap
from repro.util.text import is_subsequence, normalize_phrase, stem

gains = st.lists(st.sampled_from([0.0, 1.0, 3.0]), max_size=12)


class TestMetricsProperties:
    @settings(max_examples=100, deadline=None)
    @given(gains, st.integers(1, 10))
    def test_ndcg_bounded(self, ranking, k):
        ideal = [g for g in ranking if g > 0]
        value = ndcg_at_k(ranking, ideal, k)
        assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(gains, st.integers(1, 10))
    def test_ideal_ranking_scores_one(self, ranking, k):
        positives = sorted((g for g in ranking if g > 0), reverse=True)
        if not positives:
            return
        assert ndcg_at_k(positives, positives, k) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(gains)
    def test_dcg_monotone_under_swap_to_front(self, ranking):
        """Moving the best gain to the front never lowers DCG."""
        if not ranking:
            return
        best = max(ranking)
        index = ranking.index(best)
        promoted = [best] + ranking[:index] + ranking[index + 1 :]
        assert dcg(promoted) >= dcg(ranking) - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(gains, st.integers(1, 10))
    def test_precision_bounds(self, ranking, k):
        assert 0.0 <= precision_at_k(ranking, k) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(gains)
    def test_mrr_bounds(self, ranking):
        assert 0.0 <= reciprocal_rank(ranking) <= 1.0


class TestHeapProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0, 1, allow_nan=False), max_size=50), st.integers(1, 8))
    def test_topk_heap_keeps_k_largest(self, scores, k):
        heap = TopKHeap(k)
        for index, score in enumerate(scores):
            heap.push(score, index)
        kept = sorted((s for s, _i in heap.items_descending()), reverse=True)
        expected = sorted(scores, reverse=True)[:k]
        assert kept == expected

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.floats(0.01, 1, allow_nan=False)),
            max_size=60,
        ),
        st.integers(1, 6),
    )
    def test_tracker_matches_bruteforce(self, offers, k):
        tracker = DistinctTopKTracker(k)
        best: dict[int, float] = {}
        for key, score in offers:
            score = max(score, best.get(key, 0.0))  # scores only improve
            best[key] = score
            tracker.offer(key, score)
        ranked = sorted(best.values(), reverse=True)
        expected = ranked[k - 1] if len(ranked) >= k else 0.0
        assert abs(tracker.threshold - expected) < 1e-12


class TestTextProperties:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126)))
    def test_normalize_idempotent(self, text):
        once = normalize_phrase(text)
        assert normalize_phrase(once) == once

    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=12))
    def test_stem_shrinks_or_keeps(self, token):
        assert len(stem(token)) <= len(token) + 2  # irregulars may map freely

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.sampled_from("abcd"), max_size=6).map(tuple),
        st.lists(st.sampled_from("abcd"), max_size=6).map(tuple),
    )
    def test_subsequence_via_join(self, needle, haystack):
        expected = "".join(needle) in "".join(haystack) if needle else True
        # String containment equals contiguous-subsequence for 1-char tokens.
        assert is_subsequence(needle, haystack) == expected


class TestParserProperties:
    names = st.sampled_from(["alpha", "beta", "gamma", "p0", "q1"])

    @settings(max_examples=100, deadline=None)
    @given(names, names, names)
    def test_parse_render_roundtrip(self, a, b, c):
        text = f"?{a} {b.capitalize()} ?{c}"
        if a == c:
            return
        query = parse_query(text)
        assert parse_query(query.n3()).n3() == query.n3()
