"""Property-based equivalence: id-space × backends × termination modes.

Random worlds (triple soups with weighted observations and token phrases),
random single-pattern relaxation rules, and random conjunctive queries —
every combination of execution core ("idspace"/"termspace"), storage backend
("columnar"/"dict"/"sharded") and termination (adaptive/exhaustive) must
produce the *same* :class:`AnswerSet`: identical projection bindings,
identical scores, and identical explanation provenance (derivation triples,
rules applied, token expansions).  Equality is asserted within each
termination mode — across modes only the score profile is pinned, since
adaptive termination may surface a different equally-scored answer at the
k boundary.
"""

from hypothesis import given, settings, strategies as st

from repro.core.parser import parse_query, parse_rule
from repro.core.terms import Resource, TextToken
from repro.core.triples import Provenance, Triple
from repro.relax.rules import RuleSet
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor

resources = st.integers(0, 9).map(lambda i: Resource(f"E{i}"))
predicates = st.one_of(
    st.integers(0, 3).map(lambda i: Resource(f"p{i}")),
    st.just(TextToken("works at")),
    st.just(TextToken("lives in")),
)
observations = st.tuples(
    st.builds(Triple, resources, predicates, resources),
    st.sampled_from([0.5, 0.8, 1.0]),
    st.integers(min_value=1, max_value=4),
)

rule_texts = st.lists(
    st.tuples(
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'"]),
        st.sampled_from(["p0", "p1", "p2", "p3", "'works at'", "'lives in'"]),
        st.sampled_from([0.4, 0.6, 0.9]),
        st.booleans(),
    ).filter(lambda r: r[0] != r[1]),
    max_size=4,
)

queries = st.sampled_from(
    [
        "?x p0 ?y",
        "E1 p1 ?y",
        "?x p2 E2",
        "?x 'works at' ?y",
        "?x p3 ?x",
        "?x p0 ?y ; ?y p1 ?z",
        "?x 'works at' ?u ; ?u p2 ?c",
    ]
)


def build(entries, rule_specs, backend):
    store = TripleStore(backend=backend)
    provenance = Provenance("openie", "doc-prop", "", "reverb")
    for triple, confidence, count in entries:
        store.add(triple, provenance, confidence=confidence, count=count)
    store.freeze()
    rules = RuleSet()
    for source, target, weight, inverted in rule_specs:
        shape = "?y {t} ?x" if inverted else "?x {t} ?y"
        rules.add(
            parse_rule(f"?x {source} ?y => {shape.format(t=target)} @ {weight}")
        )
    return store, rules


def fingerprint(answers):
    return [
        (
            answer.binding,
            answer.score,
            answer.num_derivations,
            tuple(record.triple.n3() for record in answer.derivation.triples_used()),
            tuple(rule.n3() for rule in answer.derivation.rules_used()),
            tuple(
                (tm.token.n3(), tm.similarity)
                for tm in answer.derivation.token_matches_used()
            ),
        )
        for answer in answers
    ]


@settings(max_examples=40, deadline=None)
@given(st.lists(observations, min_size=1, max_size=35), rule_texts, queries)
def test_idspace_equals_termspace_across_backends(entries, rule_specs, query_text):
    query = parse_query(query_text)
    results = {}
    for backend in ("columnar", "dict", "sharded"):
        store, rules = build(entries, rule_specs, backend)
        for execution in ("idspace", "termspace"):
            for exhaustive in (False, True):
                processor = TopKProcessor(
                    store,
                    rules=rules,
                    config=ProcessorConfig(
                        execution=execution, exhaustive=exhaustive
                    ),
                )
                results[(backend, execution, exhaustive)] = fingerprint(
                    processor.query(query, 5)
                )
    # One reference per termination mode: adaptive termination may surface a
    # different *equally-scored* answer than exhaustive evaluation at the k
    # boundary (see test_idspace_adaptive_is_valid_topk_of_exhaustive), so
    # only combinations sharing the termination mode must be identical.
    for exhaustive in (False, True):
        reference = results[("dict", "termspace", exhaustive)]
        for combination, observed in results.items():
            if combination[2] == exhaustive:
                assert observed == reference, combination


@settings(max_examples=30, deadline=None)
@given(st.lists(observations, min_size=1, max_size=35), rule_texts, queries)
def test_idspace_adaptive_is_valid_topk_of_exhaustive(entries, rule_specs, query_text):
    """Adaptive id-space does less work yet yields a valid top-k.

    Score ties at the k boundary allow adaptive termination to surface a
    different (equally-scored) answer than exhaustive evaluation, so the
    invariant is the seed's: identical score profile, every answer present
    in the exhaustive set — not binding-for-binding equality.
    """
    store, rules = build(entries, rule_specs, "columnar")
    query = parse_query(query_text)
    adaptive = TopKProcessor(store, rules=rules).query(query, 3)
    exhaustive = TopKProcessor(
        store, rules=rules, config=ProcessorConfig(exhaustive=True)
    ).query(query, 10_000)
    assert adaptive.stats.sorted_accesses <= exhaustive.stats.sorted_accesses
    adaptive_sig = [(a.binding, round(a.score, 9)) for a in adaptive]
    exhaustive_sig = [(a.binding, round(a.score, 9)) for a in exhaustive]
    assert len(adaptive_sig) == min(3, len(exhaustive_sig))
    assert [s for _b, s in adaptive_sig] == [
        s for _b, s in exhaustive_sig[: len(adaptive_sig)]
    ]
    exhaustive_set = set(exhaustive_sig)
    for entry in adaptive_sig:
        assert entry in exhaustive_set
